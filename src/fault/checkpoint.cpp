#include "fault/checkpoint.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sg::fault {

CheckpointStore::CheckpointStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

std::filesystem::path CheckpointStore::device_file(std::uint64_t round,
                                                   int device) const {
  return dir_ / ("ckpt_r" + std::to_string(round) + "_d" +
                 std::to_string(device) + ".sgck");
}

void CheckpointStore::save(const Checkpoint& ck) const {
  if (!persistent()) return;
  for (int d = 0; d < static_cast<int>(ck.devices.size()); ++d) {
    partition::write_checksummed_file(device_file(ck.round, d), kMagic,
                                      kVersion, ck.devices[d].bytes);
  }
}

Checkpoint CheckpointStore::load(std::uint64_t round, int num_devices) const {
  if (!persistent()) {
    throw std::runtime_error("CheckpointStore: no directory configured");
  }
  Checkpoint ck;
  ck.round = round;
  ck.devices.resize(num_devices);
  for (int d = 0; d < num_devices; ++d) {
    ck.devices[d].bytes = partition::read_checksummed_file(
        device_file(round, d), kMagic, kVersion, "checkpoint restore");
  }
  return ck;
}

bool CheckpointStore::exists(std::uint64_t round, int num_devices) const {
  if (!persistent()) return false;
  for (int d = 0; d < num_devices; ++d) {
    if (!std::filesystem::exists(device_file(round, d))) return false;
  }
  return true;
}

}  // namespace sg::fault
