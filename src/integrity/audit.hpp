#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sg::integrity {

/// What the integrity auditor does with a violation it finds.
enum class AuditMode : std::uint8_t {
  kOff,     ///< no auditing at all (the pre-existing behaviour)
  kDetect,  ///< count + localize violations; never touch program state
  kRepair,  ///< detect, then heal (mirror-copy / rollback / restart)
};

/// Stable CLI spelling ("off", "detect", "repair").
[[nodiscard]] const char* to_string(AuditMode m);
/// Inverse of to_string; returns false when `s` names no mode.
[[nodiscard]] bool audit_mode_from_string(std::string_view s, AuditMode& out);

/// Configuration of the silent-data-corruption auditor (DESIGN.md §13).
/// The auditor fuses three independent detectors at audited round
/// boundaries (BSP: global barriers; BASP: quiescence/termination):
///
///  * replica digests — per-shard FNV-1a over the label values the
///    broadcast exchange lists share, cross-checked master-vs-mirror.
///    At a clean barrier these are provably equal (every master change
///    broadcasts before the barrier closes), so any split localizes a
///    flip to a (device, shard) pair;
///  * ABFT invariants — algorithm-specific redundancy the benchmarks
///    carry for free (pagerank's rank == consumed-mass ledger, BFS/SSSP
///    relaxed-triangle + support conditions, CC label bounds), checked
///    via the programs' SelfAuditing hooks;
///  * checkpoint read-back — every snapshot is re-read and checksum-
///    verified immediately after the write, so a corrupt blob is caught
///    while the clean live state still exists, not at restore time.
///
/// All checks run only while a fault plan with SDC events is attached
/// (FaultInjector::has_sdc()); a clean run executes none of this and
/// its reports stay byte-identical (CI-asserted).
struct AuditPolicy {
  AuditMode mode = AuditMode::kOff;
  /// Audit every `interval_rounds` audited boundaries (>= 1). Smaller
  /// intervals bound detection latency tighter but hash more often —
  /// bench/abl10_sdc_audit sweeps this axis.
  int interval_rounds = 1;
  bool check_digests = true;
  bool check_invariants = true;
  bool check_checkpoints = true;
  /// Relative slack for pagerank's floating-point mass comparisons in
  /// the *final* audit (the per-barrier rank-vs-ledger check is exact
  /// by construction and uses no epsilon).
  double rank_epsilon = 1e-9;
  /// After this many repairs on one device, the device is treated as a
  /// repeat offender and escalated through the gray-failure eviction
  /// path (its silicon is flipping bits; stop trusting it).
  int escalate_after = 3;

  [[nodiscard]] bool enabled() const { return mode != AuditMode::kOff; }
  [[nodiscard]] bool repairs() const { return mode == AuditMode::kRepair; }

  /// True when boundary `boundary_index` (0-based count of audited
  /// boundaries so far) is one the auditor should inspect.
  [[nodiscard]] bool due(std::uint64_t boundary_index) const {
    const auto n = static_cast<std::uint64_t>(
        interval_rounds < 1 ? 1 : interval_rounds);
    return enabled() && boundary_index % n == n - 1;
  }
};

}  // namespace sg::integrity
