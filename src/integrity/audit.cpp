#include "integrity/audit.hpp"

namespace sg::integrity {

const char* to_string(AuditMode m) {
  switch (m) {
    case AuditMode::kOff:
      return "off";
    case AuditMode::kDetect:
      return "detect";
    case AuditMode::kRepair:
      return "repair";
  }
  return "off";
}

bool audit_mode_from_string(std::string_view s, AuditMode& out) {
  if (s == "off") {
    out = AuditMode::kOff;
  } else if (s == "detect") {
    out = AuditMode::kDetect;
  } else if (s == "repair") {
    out = AuditMode::kRepair;
  } else {
    return false;
  }
  return true;
}

}  // namespace sg::integrity
