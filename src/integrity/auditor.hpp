#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "integrity/audit.hpp"
#include "partition/local_graph.hpp"
#include "util/hash.hpp"

namespace sg::integrity {

/// FNV-1a digest over the label values at local indices `idx` within
/// `labels`. Value-order is the exchange-list order, which both sides
/// of a master/mirror pair enumerate identically (SyncStructure builds
/// the two parallel vectors together), so equal shard contents give
/// equal digests on both devices with no canonicalization step.
template <typename T>
[[nodiscard]] std::uint64_t shard_digest(std::span<const T> labels,
                                         std::span<const std::uint32_t> idx) {
  std::uint64_t h = util::kFnv1aOffset;
  for (const std::uint32_t i : idx) {
    h = util::fnv1a64_value(labels[i], h);
  }
  return h;
}

/// Result of localizing a digest split: how many proxy pairs diverge
/// and the first diverging pair's local indices on each side.
struct Divergence {
  std::size_t count = 0;
  std::uint32_t first_mirror_local = 0;
  std::uint32_t first_master_local = 0;

  [[nodiscard]] bool any() const { return count != 0; }
};

/// Element-wise comparison of a master/mirror exchange shard. Called
/// only after a digest split (the hot path is the two hashes), so the
/// linear scan prices in at one extra pass over an already-divergent
/// shard.
template <typename T>
[[nodiscard]] Divergence scan_divergence(
    std::span<const T> mirror_vals,
    std::span<const std::uint32_t> mirror_locals,
    std::span<const T> master_vals,
    std::span<const std::uint32_t> master_locals) {
  Divergence d;
  const std::size_t n = std::min(mirror_locals.size(), master_locals.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (mirror_vals[mirror_locals[i]] != master_vals[master_locals[i]]) {
      if (d.count == 0) {
        d.first_mirror_local = mirror_locals[i];
        d.first_master_local = master_locals[i];
      }
      ++d.count;
    }
  }
  return d;
}

/// Detection-latency bookkeeping: remembers the audited-boundary index
/// at which each device's corruption was injected and, when the audit
/// flags that device, reports how many boundaries the corruption sat
/// undetected. One tracker per run; devices are sparse.
class DetectLagTracker {
 public:
  /// Record that an SDC event landed on `device` at boundary `b`.
  void note_injection(int device, std::uint64_t b) {
    pending_.push_back({device, b});
  }

  /// The audit flagged `device` at boundary `b`: returns the lag to the
  /// earliest unalarmed injection on that device (0 when the flip was
  /// caught at its own boundary) and retires every pending entry for
  /// the device. Returns -1 when nothing was pending (a violation found
  /// by a check the injection ledger does not model, e.g. contamination
  /// spread to a peer device).
  [[nodiscard]] std::int64_t note_detection(int device, std::uint64_t b) {
    std::int64_t lag = -1;
    std::uint64_t earliest = ~0ULL;
    for (const Pending& p : pending_) {
      if (p.device == device) earliest = std::min(earliest, p.boundary);
    }
    if (earliest != ~0ULL) {
      lag = static_cast<std::int64_t>(b >= earliest ? b - earliest : 0);
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [&](const Pending& p) {
                                      return p.device == device;
                                    }),
                     pending_.end());
    }
    return lag;
  }

  /// Pending injections not yet flagged (soak harness asserts this is
  /// empty — or provably value-neutral — at run end).
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  void clear() { pending_.clear(); }

 private:
  struct Pending {
    int device = -1;
    std::uint64_t boundary = 0;
  };
  std::vector<Pending> pending_;
};

/// Optional program hooks the auditor's invariant detector calls.
/// `audit_device` runs per device at every audited boundary and must be
/// cheap and *sound under partial convergence* (it sees mid-run state);
/// it returns an empty string when clean, else a short description of
/// the violated invariant, and the engine blames the device it ran on.
/// Programs without the hooks get digest + checkpoint auditing only.
///
/// Hook soundness contract (DESIGN.md §13): a hook must never report a
/// violation on an uncorrupted run — false positives would trigger
/// repairs that cost time and, under kRepair, rollbacks that never
/// converge. Epsilon-free integer invariants and the exact pagerank
/// ledger meet this by construction; the floating-point final checks
/// take `rank_epsilon` slack.
template <typename P>
concept SelfAuditing =
    requires(const P p, const typename P::DeviceState st,
             const partition::LocalGraph lg) {
      { p.audit_device(lg, st) } -> std::convertible_to<std::string>;
    };

/// Optional whole-run certificate, called once at the *final* audit
/// (the boundary where the run is about to terminate) with every
/// surviving device's graph and state. This is where completeness
/// lives: a certifying re-verification (one relaxation sweep for
/// BFS/SSSP, a union-find recompute for CC, the quiescence ledger for
/// pagerank) that even fully propagated consistent-wrong corruption
/// cannot satisfy. A violation here has no device-granular blame, so
/// repair falls back to rollback / cold restart.
template <typename P>
concept GloballyAuditing =
    requires(const P p,
             std::span<const partition::LocalGraph* const> lgs,
             std::span<const typename P::DeviceState* const> sts,
             const AuditPolicy policy) {
      { p.audit_global(lgs, sts, policy) } -> std::convertible_to<std::string>;
    };

}  // namespace sg::integrity
