#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "algo/bfs.hpp"
#include "algo/msbfs.hpp"
#include "algo/mssssp.hpp"
#include "algo/ppr_batch.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"
#include "util/hash.hpp"

namespace sg::serve {

namespace {

/// Nearest-rank percentile of an unsorted sample (deterministic).
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > sample.size()) rank = sample.size();
  return sample[rank - 1];
}

[[nodiscard]] bool is_hop_query(QueryKind k) {
  return k == QueryKind::kBfsDist || k == QueryKind::kKhopCount;
}

/// Full nonzero ranking of one PPR lane (score desc, vertex asc) — the
/// cacheable form that answers top-k requests of any k.
std::vector<ScoredVertex> rank_ppr(std::span<const double> mass) {
  std::vector<ScoredVertex> ranked;
  for (graph::VertexId v = 0; v < mass.size(); ++v) {
    if (mass[v] > 0.0) ranked.push_back({v, mass[v]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredVertex& a, const ScoredVertex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.vertex < b.vertex;
            });
  return ranked;
}

}  // namespace

BatchScheduler::BatchScheduler(const partition::DistGraph& dg,
                               const comm::SyncStructure& sync,
                               const sim::Topology& topo,
                               const sim::CostParams& params,
                               const engine::EngineConfig& engine_cfg,
                               ServeConfig cfg)
    : dg_(dg),
      sync_(sync),
      topo_(topo),
      params_(params),
      engine_cfg_(engine_cfg),
      cfg_(std::move(cfg)),
      admission_(cfg_.default_limits, cfg_.tenant_limits,
                 cfg_.max_queue_depth),
      cache_(cfg_.dist_cache_capacity, cfg_.ppr_cache_capacity) {
  if (cfg_.batch_width == 0 ||
      cfg_.batch_width > algo::MsBfsProgram::kMaxSources) {
    cfg_.batch_width = algo::MsBfsProgram::kMaxSources;
  }
  if (cfg_.ppr_batch_width == 0 ||
      cfg_.ppr_batch_width > algo::kPprBatchLanes) {
    cfg_.ppr_batch_width = algo::kPprBatchLanes;
  }
}

obs::Counter* BatchScheduler::counter(const std::string& name) {
  return cfg_.metrics == nullptr ? nullptr : &cfg_.metrics->counter(name);
}

obs::FlightRecorder& BatchScheduler::flight() const {
  return engine_cfg_.flight != nullptr ? *engine_cfg_.flight
                                       : obs::FlightRecorder::global();
}

void BatchScheduler::note_queue_depth() {
  const auto depth = static_cast<std::uint32_t>(queue_.size());
  report_.max_queue_depth_seen =
      std::max(report_.max_queue_depth_seen, depth);
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->gauge("serve.queue_depth").set(static_cast<double>(depth));
  }
}

void BatchScheduler::bump_epoch() {
  ++cfg_.graph_epoch;
  cache_.invalidate_stale(cfg_.graph_epoch);
}

void BatchScheduler::answer_from_dist(const Query& q,
                                      std::span<const std::uint32_t> dist,
                                      Answer& a) const {
  if (q.kind == QueryKind::kBfsDist) {
    const std::uint32_t d = dist[q.target];
    a.distance = d == algo::kInfDist ? kUnreachable : d;
    return;
  }
  // k-hop neighborhood: member count plus an order-canonical digest
  // (vertex ids ascending), so answers compare as single values.
  std::uint64_t count = 0;
  std::uint64_t digest = util::kFnv1aOffset;
  for (graph::VertexId v = 0; v < dist.size(); ++v) {
    if (dist[v] <= q.k) {
      ++count;
      digest = util::fnv1a64_value(v, digest);
    }
  }
  a.khop_count = count;
  a.khop_digest = digest;
}

bool BatchScheduler::try_serve_from_cache(const Pending& p, Answer& a) {
  const Query& q = p.q;
  switch (q.kind) {
    case QueryKind::kBfsDist:
    case QueryKind::kKhopCount: {
      const auto* dist = cache_.find_bfs(q.source, cfg_.graph_epoch);
      if (dist == nullptr) return false;
      answer_from_dist(q, *dist, a);
      return true;
    }
    case QueryKind::kSsspDist: {
      const auto* dist = cache_.find_sssp(q.source, cfg_.graph_epoch);
      if (dist == nullptr) return false;
      a.distance = (*dist)[q.target];
      return true;
    }
    case QueryKind::kPprTopK: {
      const auto* ranked = cache_.find_ppr(q.source, cfg_.ppr_alpha,
                                           cfg_.ppr_eps, cfg_.graph_epoch);
      if (ranked == nullptr) return false;
      const std::size_t k = std::min<std::size_t>(q.k, ranked->size());
      a.topk.assign(ranked->begin(), ranked->begin() + k);
      return true;
    }
  }
  return false;
}

void BatchScheduler::finish_answer(const Pending& p, Answer& a,
                                   sim::SimTime completed, bool from_cache) {
  const Query& q = p.q;
  a.served = true;
  a.from_cache = from_cache;
  a.completed = completed;
  a.deadline_met = completed <= q.deadline;
  const double latency_us = (completed - q.arrival).micros();

  ++report_.served;
  if (from_cache) ++report_.served_from_cache;
  auto& ts = report_.tenants[q.tenant];
  ++ts.served;
  if (a.deadline_met) {
    ++ts.deadline_met;
  }
  latencies_us_.push_back(latency_us);
  tenant_latencies_us_[q.tenant].push_back(latency_us);
  report_.makespan = sim::max(report_.makespan, completed);

  if (cfg_.metrics != nullptr) {
    counter("serve.served")->inc();
    counter("serve.tenant" + std::to_string(q.tenant) + ".served")->inc();
    if (from_cache) counter("serve.cache_hits")->inc();
    if (!a.deadline_met) counter("serve.deadline_missed")->inc();
    cfg_.metrics
        ->histogram("serve.latency_us", obs::Histogram::exp2_bounds(0, 24))
        .observe(latency_us);
  }
}

void BatchScheduler::admit_until(sim::SimTime now,
                                 std::span<const Query> queries,
                                 std::size_t& next,
                                 std::vector<Answer>& answers) {
  while (next < queries.size() && queries[next].arrival <= now) {
    const std::size_t idx = next++;
    const Query& q = queries[idx];
    Answer& a = answers[idx];
    a.id = q.id;
    a.tenant = q.tenant;
    a.kind = q.kind;

    if (q.tenant >= report_.tenants.size()) {
      report_.tenants.resize(q.tenant + 1);
      tenant_latencies_us_.resize(q.tenant + 1);
      tenant_depth_.resize(q.tenant + 1, 0);
    }
    ++report_.submitted;
    auto& ts = report_.tenants[q.tenant];
    ++ts.submitted;
    if (auto* c = counter("serve.submitted")) c->inc();

    const auto n = dg_.global_vertices();
    const bool needs_target =
        q.kind == QueryKind::kBfsDist || q.kind == QueryKind::kSsspDist;
    AdmissionDecision d;
    if (q.source >= n || (needs_target && q.target >= n)) {
      d.admitted = false;
      d.reason = RejectReason::kUnknownVertex;
      const graph::VertexId bad = q.source >= n ? q.source : q.target;
      d.detail = "vertex " + std::to_string(bad) + " outside the graph (" +
                 std::to_string(n) + " vertices)";
    } else {
      d = admission_.admit(q, static_cast<std::uint32_t>(queue_.size()),
                           tenant_depth_[q.tenant]);
    }
    if (!d.admitted) {
      a.served = false;
      a.reject_reason = d.reason;
      a.reject_detail = std::move(d.detail);
      a.completed = now;
      ++report_.rejected;
      ++ts.rejected;
      flight().record(obs::FlightKind::kServeReject,
                      static_cast<int>(q.tenant),
                      static_cast<std::int64_t>(q.id),
                      static_cast<std::int64_t>(d.reason),
                      to_string(d.reason), now.seconds());
      if (auto* c = counter("serve.rejected")) c->inc();
      if (auto* c =
              counter("serve.tenant" + std::to_string(q.tenant) + ".rejected"))
        c->inc();
      continue;
    }

    ++report_.admitted;
    ++ts.admitted;
    flight().record(obs::FlightKind::kServeAdmit, static_cast<int>(q.tenant),
                    static_cast<std::int64_t>(q.id),
                    static_cast<std::int64_t>(q.kind), "admit",
                    now.seconds());
    if (auto* c = counter("serve.admitted")) c->inc();
    if (auto* c =
            counter("serve.tenant" + std::to_string(q.tenant) + ".admitted"))
      c->inc();

    Pending p{q, idx};
    if (try_serve_from_cache(p, a)) {
      // The serving thread is free at `now`; a cache hit completes
      // without touching the engine.
      finish_answer(p, a, now, /*from_cache=*/true);
      continue;
    }
    queue_.push_back(p);
    ++tenant_depth_[q.tenant];
    note_queue_depth();
  }
}

void BatchScheduler::dispatch_batch(std::vector<Answer>& answers) {
  const auto dispatch_scope =
      obs::Profiler::global().scope("serve.dispatch_batch");
  // Deadline-aware dispatch order: priority class first (0 most
  // urgent), earliest absolute deadline within a class, query id as
  // the deterministic tie-breaker.
  std::sort(queue_.begin(), queue_.end(),
            [](const Pending& a, const Pending& b) {
              if (a.q.priority != b.q.priority)
                return a.q.priority < b.q.priority;
              if (a.q.deadline != b.q.deadline)
                return a.q.deadline < b.q.deadline;
              return a.q.id < b.q.id;
            });
  const Query& head = queue_.front().q;

  // Coalesce every queued query the head's engine run can answer.
  std::vector<graph::VertexId> lanes;
  std::vector<std::size_t> taken;  // indices into queue_
  const auto lane_of = [&](graph::VertexId v) -> std::size_t {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] == v) return i;
    }
    return lanes.size();
  };
  if (is_hop_query(head.kind)) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Query& q = queue_[i].q;
      if (!is_hop_query(q.kind)) continue;
      if (lane_of(q.source) == lanes.size()) {
        if (lanes.size() >= cfg_.batch_width) continue;
        lanes.push_back(q.source);
      }
      taken.push_back(i);
    }
  } else if (head.kind == QueryKind::kPprTopK) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Query& q = queue_[i].q;
      if (q.kind != QueryKind::kPprTopK) continue;
      if (lane_of(q.source) == lanes.size()) {
        if (lanes.size() >= cfg_.ppr_batch_width) continue;
        lanes.push_back(q.source);
      }
      taken.push_back(i);
    }
  } else {
    // sssp: lane-batched exactly like msbfs (weighted min relaxation is
    // just as order-independent), so distinct sources share one run.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Query& q = queue_[i].q;
      if (q.kind != QueryKind::kSsspDist) continue;
      if (lane_of(q.source) == lanes.size()) {
        if (lanes.size() >= cfg_.batch_width) continue;
        lanes.push_back(q.source);
      }
      taken.push_back(i);
    }
  }

  // One fused engine run on the simulated clock.
  const sim::SimTime start = clock_;
  engine::RunStats stats;
  std::vector<std::vector<std::uint32_t>> hop_dist;
  std::vector<std::vector<ScoredVertex>> ppr_ranked;
  std::vector<std::vector<std::uint64_t>> sssp_dist;
  if (is_hop_query(head.kind)) {
    auto res = algo::run_msbfs(dg_, sync_, topo_, params_, engine_cfg_, lanes);
    stats = std::move(res.stats);
    hop_dist = std::move(res.dist);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      cache_.put_bfs(lanes[i], cfg_.graph_epoch, hop_dist[i]);
    }
  } else if (head.kind == QueryKind::kPprTopK) {
    auto res = algo::run_ppr_batch(dg_, sync_, topo_, params_, engine_cfg_,
                                   lanes, cfg_.ppr_alpha, cfg_.ppr_eps);
    stats = std::move(res.stats);
    ppr_ranked.reserve(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      ppr_ranked.push_back(rank_ppr(res.mass[i]));
      cache_.put_ppr(lanes[i], cfg_.ppr_alpha, cfg_.ppr_eps,
                     cfg_.graph_epoch, ppr_ranked.back());
    }
  } else {
    auto res = algo::run_mssssp(dg_, sync_, topo_, params_, engine_cfg_, lanes);
    stats = std::move(res.stats);
    sssp_dist = std::move(res.dist);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      cache_.put_sssp(lanes[i], cfg_.graph_epoch, sssp_dist[i]);
    }
  }
  const sim::SimTime finish = clock_ + stats.total_time;
  clock_ = finish;

  ++report_.engine_runs;
  report_.engine_sweeps += stats.global_rounds;
  report_.lanes_total += lanes.size();

  if (cfg_.record_batches) {
    BatchRecord rec;
    rec.klass = head.kind == QueryKind::kKhopCount ? QueryKind::kBfsDist
                                                   : head.kind;
    rec.lane_sources = lanes;
    rec.rounds = stats.global_rounds;
    rec.start = start;
    rec.finish = finish;
    for (const std::size_t i : taken) rec.query_ids.push_back(queue_[i].q.id);
    batches_.push_back(std::move(rec));
  }
  engine_stats_.push_back(std::move(stats));

  // Answer every coalesced query at the shared completion instant.
  for (const std::size_t i : taken) {
    const Pending& p = queue_[i];
    Answer& a = answers[p.out_index];
    if (is_hop_query(p.q.kind)) {
      answer_from_dist(p.q, hop_dist[lane_of(p.q.source)], a);
    } else if (p.q.kind == QueryKind::kPprTopK) {
      const auto& ranked = ppr_ranked[lane_of(p.q.source)];
      const std::size_t k = std::min<std::size_t>(p.q.k, ranked.size());
      a.topk.assign(ranked.begin(), ranked.begin() + k);
    } else {
      a.distance = sssp_dist[lane_of(p.q.source)][p.q.target];
    }
    finish_answer(p, a, finish, /*from_cache=*/false);
    --tenant_depth_[p.q.tenant];
  }

  // Drop the served queries; order of the remainder is irrelevant (the
  // next dispatch re-sorts).
  std::vector<Pending> rest;
  rest.reserve(queue_.size() - taken.size());
  std::size_t t = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (t < taken.size() && taken[t] == i) {
      ++t;
      continue;
    }
    rest.push_back(queue_[i]);
  }
  queue_ = std::move(rest);
  note_queue_depth();
}

std::vector<Answer> BatchScheduler::run(std::span<const Query> queries) {
  std::vector<Answer> answers(queries.size());
  std::size_t next = 0;
  while (next < queries.size() || !queue_.empty()) {
    if (queue_.empty()) {
      // Idle: jump to the next arrival (the clock never runs backward).
      clock_ = sim::max(clock_, queries[next].arrival);
    }
    admit_until(clock_, queries, next, answers);
    if (queue_.empty()) continue;  // everything rejected or cache-served
    dispatch_batch(answers);
  }

  report_.p50_latency_us = percentile(latencies_us_, 50.0);
  report_.p99_latency_us = percentile(latencies_us_, 99.0);
  std::uint64_t met = 0;
  for (std::size_t t = 0; t < report_.tenants.size(); ++t) {
    auto& ts = report_.tenants[t];
    ts.p50_latency_us = percentile(tenant_latencies_us_[t], 50.0);
    ts.p99_latency_us = percentile(tenant_latencies_us_[t], 99.0);
    met += ts.deadline_met;
  }
  report_.deadline_hit_ratio =
      report_.served > 0
          ? static_cast<double>(met) / static_cast<double>(report_.served)
          : 0.0;
  return answers;
}

std::string BatchScheduler::report_json(double host_wall_ms) const {
  const ResultCache::Stats& cs = cache_.stats();
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "sg.serve.report");
  w.kv("version", kServeReportVersion);
  w.key("config").begin_object();
  w.kv("batch_width", cfg_.batch_width);
  w.kv("ppr_batch_width", cfg_.ppr_batch_width);
  w.kv("max_queue_depth", cfg_.max_queue_depth);
  w.kv("dist_cache_capacity", cfg_.dist_cache_capacity);
  w.kv("ppr_cache_capacity", cfg_.ppr_cache_capacity);
  w.kv("ppr_alpha", cfg_.ppr_alpha);
  w.kv("ppr_eps", cfg_.ppr_eps);
  w.kv("graph_epoch", cfg_.graph_epoch);
  w.end_object();
  w.key("totals").begin_object();
  w.kv("submitted", report_.submitted);
  w.kv("admitted", report_.admitted);
  w.kv("rejected", report_.rejected);
  w.kv("served", report_.served);
  w.kv("served_from_cache", report_.served_from_cache);
  w.kv("max_queue_depth_seen", report_.max_queue_depth_seen);
  w.kv("makespan_s", report_.makespan.seconds());
  w.end_object();
  w.key("latency").begin_object();
  w.kv("p50_us", report_.p50_latency_us);
  w.kv("p99_us", report_.p99_latency_us);
  w.kv("deadline_hit_ratio", report_.deadline_hit_ratio);
  w.end_object();
  w.key("engine").begin_object();
  w.kv("runs", report_.engine_runs);
  w.kv("sweeps", report_.engine_sweeps);
  w.kv("lanes_total", report_.lanes_total);
  w.end_object();
  w.key("cache").begin_object();
  w.kv("hits", cs.hits);
  w.kv("misses", cs.misses);
  w.kv("insertions", cs.insertions);
  w.kv("evictions", cs.evictions);
  w.kv("invalidations", cs.invalidations);
  w.end_object();
  w.key("tenants").begin_array();
  for (std::size_t t = 0; t < report_.tenants.size(); ++t) {
    const TenantStats& ts = report_.tenants[t];
    w.begin_object();
    w.kv("tenant", static_cast<std::uint64_t>(t));
    w.kv("submitted", ts.submitted);
    w.kv("admitted", ts.admitted);
    w.kv("rejected", ts.rejected);
    w.kv("served", ts.served);
    w.kv("deadline_met", ts.deadline_met);
    w.kv("p50_us", ts.p50_latency_us);
    w.kv("p99_us", ts.p99_latency_us);
    w.end_object();
  }
  w.end_array();
  if (host_wall_ms >= 0.0) {
    // Measured wall time of the whole trace replay on this machine —
    // marked nondeterministic so byte-identity tooling knows to stop at
    // the `tenants` array (the default omits this section entirely).
    w.key("host").begin_object();
    w.kv("nondeterministic", true);
    w.kv("wall_ms", host_wall_ms);
    w.kv("queries_per_sec",
         host_wall_ms > 0.0
             ? static_cast<double>(report_.served) / (host_wall_ms / 1e3)
             : 0.0);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace sg::serve
