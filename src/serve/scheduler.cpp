#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "algo/bfs.hpp"
#include "algo/msbfs.hpp"
#include "algo/mssssp.hpp"
#include "algo/ppr_batch.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"
#include "util/hash.hpp"

namespace sg::serve {

namespace {

/// Nearest-rank percentile of an unsorted sample (deterministic).
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > sample.size()) rank = sample.size();
  return sample[rank - 1];
}

[[nodiscard]] bool is_hop_query(QueryKind k) {
  return k == QueryKind::kBfsDist || k == QueryKind::kKhopCount;
}

/// Full nonzero ranking of one PPR lane (score desc, vertex asc) — the
/// cacheable form that answers top-k requests of any k.
std::vector<ScoredVertex> rank_ppr(std::span<const double> mass) {
  std::vector<ScoredVertex> ranked;
  for (graph::VertexId v = 0; v < mass.size(); ++v) {
    if (mass[v] > 0.0) ranked.push_back({v, mass[v]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredVertex& a, const ScoredVertex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.vertex < b.vertex;
            });
  return ranked;
}

}  // namespace

BatchScheduler::BatchScheduler(const partition::DistGraph& dg,
                               const comm::SyncStructure& sync,
                               const sim::Topology& topo,
                               const sim::CostParams& params,
                               const engine::EngineConfig& engine_cfg,
                               ServeConfig cfg)
    : dg_(dg),
      sync_(sync),
      topo_(topo),
      params_(params),
      engine_cfg_(engine_cfg),
      cfg_(std::move(cfg)),
      admission_(cfg_.default_limits, cfg_.tenant_limits,
                 cfg_.max_queue_depth),
      brownout_(cfg_.brownout),
      reshard_(cfg_.reshard),
      batch_est_(cfg_.lifecycle.ewma_alpha) {
  if (cfg_.batch_width == 0 ||
      cfg_.batch_width > algo::MsBfsProgram::kMaxSources) {
    cfg_.batch_width = algo::MsBfsProgram::kMaxSources;
  }
  if (cfg_.ppr_batch_width == 0 ||
      cfg_.ppr_batch_width > algo::kPprBatchLanes) {
    cfg_.ppr_batch_width = algo::kPprBatchLanes;
  }
  // One result cache per shard home. Disabled resharding keeps the
  // single shared home at full capacity — bit-identical to a build
  // without the reshard layer; enabling it splits the budget evenly.
  const std::uint32_t homes =
      reshard_.enabled() ? std::max<std::uint32_t>(1, reshard_.num_homes())
                         : 1;
  const std::uint32_t dist_cap =
      homes == 1 ? cfg_.dist_cache_capacity
                 : std::max<std::uint32_t>(1, cfg_.dist_cache_capacity / homes);
  const std::uint32_t ppr_cap =
      homes == 1 ? cfg_.ppr_cache_capacity
                 : std::max<std::uint32_t>(1, cfg_.ppr_cache_capacity / homes);
  caches_.reserve(homes);
  for (std::uint32_t h = 0; h < homes; ++h) {
    caches_.emplace_back(dist_cap, ppr_cap);
  }
}

obs::Counter* BatchScheduler::counter(const std::string& name) {
  return cfg_.metrics == nullptr ? nullptr : &cfg_.metrics->counter(name);
}

obs::FlightRecorder& BatchScheduler::flight() const {
  return engine_cfg_.flight != nullptr ? *engine_cfg_.flight
                                       : obs::FlightRecorder::global();
}

std::uint32_t BatchScheduler::home_for(std::uint32_t tenant) const {
  if (!reshard_.enabled()) return 0;
  return reshard_.home_of(tenant) %
         static_cast<std::uint32_t>(caches_.size());
}

ResultCache& BatchScheduler::cache_for(std::uint32_t tenant) {
  return caches_[home_for(tenant)];
}

const ResultCache& BatchScheduler::cache_of(std::uint32_t tenant) const {
  return caches_[home_for(tenant)];
}

ResultCache::Stats BatchScheduler::cache_stats() const {
  ResultCache::Stats agg;
  for (const ResultCache& c : caches_) agg += c.stats();
  return agg;
}

engine::EngineConfig BatchScheduler::fallback_cfg() const {
  // The fault-free twin: re-dispatch against replicas that did not
  // lose or degrade a device. Labels are bit-identical either way;
  // only the simulated completion time differs.
  engine::EngineConfig c = engine_cfg_;
  c.fault_plan = nullptr;
  return c;
}

void BatchScheduler::note_queue_depth() {
  const auto depth = static_cast<std::uint32_t>(queue_.size());
  report_.max_queue_depth_seen =
      std::max(report_.max_queue_depth_seen, depth);
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->gauge("serve.queue_depth").set(static_cast<double>(depth));
  }
}

void BatchScheduler::bump_epoch() {
  ++cfg_.graph_epoch;
  for (ResultCache& c : caches_) c.invalidate_stale(cfg_.graph_epoch);
}

void BatchScheduler::answer_from_dist(const Query& q,
                                      std::span<const std::uint32_t> dist,
                                      Answer& a) const {
  if (q.kind == QueryKind::kBfsDist) {
    const std::uint32_t d = dist[q.target];
    a.distance = d == algo::kInfDist ? kUnreachable : d;
    return;
  }
  // k-hop neighborhood: member count plus an order-canonical digest
  // (vertex ids ascending), so answers compare as single values.
  std::uint64_t count = 0;
  std::uint64_t digest = util::kFnv1aOffset;
  for (graph::VertexId v = 0; v < dist.size(); ++v) {
    if (dist[v] <= q.k) {
      ++count;
      digest = util::fnv1a64_value(v, digest);
    }
  }
  a.khop_count = count;
  a.khop_digest = digest;
}

bool BatchScheduler::try_serve_from_cache(const Pending& p, Answer& a) {
  const Query& q = p.q;
  ResultCache& cache = cache_for(q.tenant);
  switch (q.kind) {
    case QueryKind::kBfsDist:
    case QueryKind::kKhopCount: {
      const auto* dist = cache.find_bfs(q.source, cfg_.graph_epoch);
      if (dist == nullptr) return false;
      answer_from_dist(q, *dist, a);
      return true;
    }
    case QueryKind::kSsspDist: {
      const auto* dist = cache.find_sssp(q.source, cfg_.graph_epoch);
      if (dist == nullptr) return false;
      a.distance = (*dist)[q.target];
      return true;
    }
    case QueryKind::kPprTopK: {
      const auto* ranked = cache.find_ppr(q.source, cfg_.ppr_alpha,
                                          cfg_.ppr_eps, cfg_.graph_epoch);
      if (ranked == nullptr) return false;
      const std::size_t k = std::min<std::size_t>(q.k, ranked->size());
      a.topk.assign(ranked->begin(), ranked->begin() + k);
      return true;
    }
  }
  return false;
}

bool BatchScheduler::try_serve_degraded(const Pending& p, Answer& a) {
  // Landmark triangle-inequality upper bound d(s,t) <= d(l,s) + d(l,t)
  // over the tenant's home cache — sound on the symmetric graphs the
  // serving layer runs on. khop and ppr have no comparable bound, so
  // under brownout they stay cache-only (exact hit or queued).
  const Query& q = p.q;
  const ResultCache& cache = cache_of(q.tenant);
  std::uint64_t ub = kUnreachable;
  if (q.kind == QueryKind::kBfsDist) {
    ub = cache.hop_bound(q.source, q.target, cfg_.graph_epoch);
  } else if (q.kind == QueryKind::kSsspDist) {
    ub = cache.sssp_bound(q.source, q.target, cfg_.graph_epoch);
  }
  if (ub == kUnreachable) return false;
  a.distance = ub;
  a.degraded = true;
  return true;
}

void BatchScheduler::finish_answer(const Pending& p, Answer& a,
                                   sim::SimTime completed, bool from_cache) {
  const Query& q = p.q;
  a.served = true;
  a.from_cache = from_cache;
  a.completed = completed;
  a.deadline_met = completed <= q.deadline;
  const double latency_us = (completed - q.arrival).micros();

  ++report_.served;
  if (from_cache) ++report_.served_from_cache;
  if (a.degraded) ++report_.degraded_served;
  auto& ts = report_.tenants[q.tenant];
  ++ts.served;
  if (a.degraded) ++ts.degraded;
  if (a.deadline_met) {
    ++ts.deadline_met;
  }
  if (q.priority >= report_.by_priority.size()) {
    report_.by_priority.resize(q.priority + 1);
  }
  auto& ps = report_.by_priority[q.priority];
  ++ps.served;
  if (a.deadline_met) ++ps.deadline_met;
  latencies_us_.push_back(latency_us);
  tenant_latencies_us_[q.tenant].push_back(latency_us);
  report_.makespan = sim::max(report_.makespan, completed);
  reshard_.note_served(q.tenant, 1.0);

  if (cfg_.metrics != nullptr) {
    counter("serve.served")->inc();
    counter("serve.tenant" + std::to_string(q.tenant) + ".served")->inc();
    if (from_cache) counter("serve.cache_hits")->inc();
    if (a.degraded) counter("serve.degraded")->inc();
    if (!a.deadline_met) counter("serve.deadline_missed")->inc();
    cfg_.metrics
        ->histogram("serve.latency_us", obs::Histogram::exp2_bounds(0, 24))
        .observe(latency_us);
  }
}

void BatchScheduler::note_rejection(std::uint32_t tenant, std::uint64_t id,
                                    RejectReason reason) {
  (void)id;
  const auto idx = static_cast<std::size_t>(reason);
  ++report_.rejected;
  ++report_.rejected_by_reason[idx];
  auto& ts = report_.tenants[tenant];
  ++ts.rejected;
  ++ts.rejected_by_reason[idx];
  if (cfg_.metrics != nullptr) {
    counter("serve.rejected")->inc();
    counter(std::string("serve.rejected.") + to_string(reason))->inc();
    counter("serve.tenant" + std::to_string(tenant) + ".rejected")->inc();
    counter("serve.tenant" + std::to_string(tenant) + ".rejected." +
            to_string(reason))
        ->inc();
  }
}

void BatchScheduler::reject_answer(const Pending& p, Answer& a,
                                   RejectReason reason, std::string detail) {
  const Query& q = p.q;
  a.served = false;
  a.from_cache = false;
  a.degraded = false;
  a.reject_reason = reason;
  a.reject_detail = std::move(detail);
  a.completed = clock_;
  note_rejection(q.tenant, q.id, reason);
  flight().record(obs::FlightKind::kServeReject, static_cast<int>(q.tenant),
                  static_cast<std::int64_t>(q.id),
                  static_cast<std::int64_t>(reason), to_string(reason),
                  clock_.seconds());
}

void BatchScheduler::admit_until(sim::SimTime now,
                                 std::span<const Query> queries,
                                 std::size_t& next,
                                 std::vector<Answer>& answers) {
  // The admission-time deadline gate arms once the batch-time estimate
  // has warmed up (lifecycle on): a query whose slack cannot cover one
  // fused batch is rejected up front instead of expiring in the queue.
  const sim::SimTime est_service =
      cfg_.lifecycle.enabled && cfg_.lifecycle.timeout_queries
          ? batch_est_.value()
          : sim::SimTime::zero();
  while (next < queries.size() && queries[next].arrival <= now) {
    const std::size_t idx = next++;
    const Query& q = queries[idx];
    Answer& a = answers[idx];
    a.id = q.id;
    a.tenant = q.tenant;
    a.kind = q.kind;

    if (q.tenant >= report_.tenants.size()) {
      report_.tenants.resize(q.tenant + 1);
      tenant_latencies_us_.resize(q.tenant + 1);
      tenant_depth_.resize(q.tenant + 1, 0);
    }
    ++report_.submitted;
    auto& ts = report_.tenants[q.tenant];
    ++ts.submitted;
    if (auto* c = counter("serve.submitted")) c->inc();

    const auto n = dg_.global_vertices();
    const bool needs_target =
        q.kind == QueryKind::kBfsDist || q.kind == QueryKind::kSsspDist;
    AdmissionDecision d;
    if (q.source >= n || (needs_target && q.target >= n)) {
      d.admitted = false;
      d.reason = RejectReason::kUnknownVertex;
      const graph::VertexId bad = q.source >= n ? q.source : q.target;
      d.detail = "vertex " + std::to_string(bad) + " outside the graph (" +
                 std::to_string(n) + " vertices)";
    } else {
      d = admission_.admit(q, static_cast<std::uint32_t>(queue_.size()),
                           tenant_depth_[q.tenant], est_service);
    }
    if (!d.admitted) {
      a.served = false;
      a.reject_reason = d.reason;
      a.reject_detail = std::move(d.detail);
      a.completed = now;
      if (d.reason == RejectReason::kDeadlineInfeasible) {
        ++report_.lifecycle.infeasible;
        if (auto* c = counter("serve.lifecycle.infeasible")) c->inc();
      }
      note_rejection(q.tenant, q.id, d.reason);
      flight().record(obs::FlightKind::kServeReject,
                      static_cast<int>(q.tenant),
                      static_cast<std::int64_t>(q.id),
                      static_cast<std::int64_t>(d.reason),
                      to_string(d.reason), now.seconds());
      continue;
    }

    ++report_.admitted;
    ++ts.admitted;
    flight().record(obs::FlightKind::kServeAdmit, static_cast<int>(q.tenant),
                    static_cast<std::int64_t>(q.id),
                    static_cast<std::int64_t>(q.kind), "admit",
                    now.seconds());
    if (auto* c = counter("serve.admitted")) c->inc();
    if (auto* c =
            counter("serve.tenant" + std::to_string(q.tenant) + ".admitted"))
      c->inc();

    Pending p{q, idx};
    if (try_serve_from_cache(p, a)) {
      // The serving thread is free at `now`; a cache hit completes
      // without touching the engine.
      finish_answer(p, a, now, /*from_cache=*/true);
      continue;
    }
    queue_.push_back(p);
    ++tenant_depth_[q.tenant];
    note_queue_depth();
  }
}

void BatchScheduler::apply_overload_controls(std::vector<Answer>& answers) {
  const LifecyclePolicy& lc = cfg_.lifecycle;
  const bool expire = lc.enabled && lc.timeout_queries;
  const bool brown = brownout_.enabled();
  if (!expire && !brown) return;

  if (brown) {
    std::vector<BrownoutController::QueuedView> views;
    views.reserve(queue_.size());
    for (const Pending& p : queue_) {
      views.push_back({p.q.tenant, p.q.priority, p.q.deadline});
    }
    const auto verdict = brownout_.evaluate(clock_, views,
                                            cfg_.max_queue_depth,
                                            batch_est_.value());
    if (verdict.changed) {
      flight().record(obs::FlightKind::kServeBrownout, -1,
                      static_cast<std::int64_t>(verdict.tier),
                      static_cast<std::int64_t>(verdict.previous_tier),
                      verdict.tier > verdict.previous_tier ? "escalate"
                                                           : "recover",
                      clock_.seconds());
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->gauge("serve.brownout.tier")
            .set(static_cast<double>(verdict.tier));
        counter("serve.brownout.transitions")->inc();
      }
    }
  }

  if ((!expire || queue_.empty()) && (!brown || brownout_.tier() == 0)) {
    return;
  }
  std::vector<Pending> kept;
  kept.reserve(queue_.size());
  for (const Pending& p : queue_) {
    Answer& a = answers[p.out_index];
    if (expire && p.q.deadline < clock_) {
      ++report_.lifecycle.timeouts;
      if (auto* c = counter("serve.lifecycle.timeouts")) c->inc();
      reject_answer(p, a, RejectReason::kDeadlineInfeasible,
                    "deadline passed at " +
                        obs::format_double(clock_.seconds()) +
                        " s while queued");
      --tenant_depth_[p.q.tenant];
      continue;
    }
    if (brown && brownout_.tier() > 0) {
      if (brownout_.should_shed(p.q.tenant, p.q.priority)) {
        reject_answer(
            p, a, RejectReason::kBrownoutShed,
            "brownout tier " +
                std::to_string(brownout_.effective_tier(p.q.tenant)) +
                " shed (priority " + std::to_string(p.q.priority) + ")");
        if (auto* c = counter("serve.brownout.shed")) c->inc();
        --tenant_depth_[p.q.tenant];
        continue;
      }
      if (brownout_.should_degrade(p.q.tenant)) {
        // Exact cache first (a batch may have landed the row since
        // admission), then the landmark triangle bound.
        if (try_serve_from_cache(p, a)) {
          finish_answer(p, a, clock_, /*from_cache=*/true);
          --tenant_depth_[p.q.tenant];
          continue;
        }
        if (try_serve_degraded(p, a)) {
          finish_answer(p, a, clock_, /*from_cache=*/false);
          --tenant_depth_[p.q.tenant];
          continue;
        }
      }
    }
    kept.push_back(p);
  }
  queue_ = std::move(kept);
  note_queue_depth();
}

void BatchScheduler::maybe_reshard() {
  const auto mv = reshard_.evaluate();
  if (!mv) return;
  const std::string context = "serve.reshard tenant " +
                              std::to_string(mv->tenant) + " home " +
                              std::to_string(mv->from) + "->" +
                              std::to_string(mv->to);
  // Archive the tenant's serving state (cache slice + token-bucket
  // accounting), seal it in the checksummed envelope, and replay it on
  // the destination home. open_blob() verifies the FNV-1a digest, so a
  // migration either lands bit-exactly or throws — never silently
  // corrupts.
  partition::ByteWriter w;
  caches_[mv->from].extract_tenant(mv->tenant, w);
  const TokenBucket::State bucket = admission_.export_bucket(mv->tenant);
  w(bucket);
  const std::vector<char> blob = seal_blob(w.bytes());
  const std::vector<char> payload = open_blob(blob, context);
  partition::ByteReader r(payload, context);
  caches_[mv->to].absorb(r);
  TokenBucket::State restored{};
  r(restored);
  r.expect_end();
  admission_.import_bucket(mv->tenant, restored);
  reshard_.apply(*mv);

  // The transfer happens at a safe batch boundary and charges the
  // serving clock at the modeled interconnect rate.
  const double gbps = reshard_.policy().migration_gbps;
  if (gbps > 0.0) {
    clock_ += sim::SimTime{static_cast<double>(blob.size()) / (gbps * 1e9)};
  }
  ++report_.reshard_migrations;
  report_.reshard_bytes += blob.size();
  flight().record(obs::FlightKind::kServeReshard,
                  static_cast<int>(mv->to),
                  static_cast<std::int64_t>(mv->tenant),
                  static_cast<std::int64_t>(blob.size()), "migrate",
                  clock_.seconds());
  if (auto* c = counter("serve.reshard.migrations")) c->inc();
}

void BatchScheduler::dispatch_batch(std::vector<Answer>& answers) {
  const auto dispatch_scope =
      obs::Profiler::global().scope("serve.dispatch_batch");
  // Deadline-aware dispatch order: priority class first (0 most
  // urgent), earliest absolute deadline within a class, query id as
  // the deterministic tie-breaker.
  std::sort(queue_.begin(), queue_.end(),
            [](const Pending& a, const Pending& b) {
              if (a.q.priority != b.q.priority)
                return a.q.priority < b.q.priority;
              if (a.q.deadline != b.q.deadline)
                return a.q.deadline < b.q.deadline;
              return a.q.id < b.q.id;
            });

  // Dispatch boundary = the robustness layer's safe point: expire /
  // shed / degrade first, then consider a serving-state migration.
  apply_overload_controls(answers);
  if (queue_.empty()) return;
  if (reshard_.enabled()) maybe_reshard();

  const Query& head = queue_.front().q;

  // Coalesce every queued query the head's engine run can answer.
  std::vector<graph::VertexId> lanes;
  std::vector<std::size_t> taken;  // indices into queue_
  const auto lane_of = [&](graph::VertexId v) -> std::size_t {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] == v) return i;
    }
    return lanes.size();
  };
  if (is_hop_query(head.kind)) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Query& q = queue_[i].q;
      if (!is_hop_query(q.kind)) continue;
      if (lane_of(q.source) == lanes.size()) {
        if (lanes.size() >= cfg_.batch_width) continue;
        lanes.push_back(q.source);
      }
      taken.push_back(i);
    }
  } else if (head.kind == QueryKind::kPprTopK) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Query& q = queue_[i].q;
      if (q.kind != QueryKind::kPprTopK) continue;
      if (lane_of(q.source) == lanes.size()) {
        if (lanes.size() >= cfg_.ppr_batch_width) continue;
        lanes.push_back(q.source);
      }
      taken.push_back(i);
    }
  } else {
    // sssp: lane-batched exactly like msbfs (weighted min relaxation is
    // just as order-independent), so distinct sources share one run.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Query& q = queue_[i].q;
      if (q.kind != QueryKind::kSsspDist) continue;
      if (lane_of(q.source) == lanes.size()) {
        if (lanes.size() >= cfg_.batch_width) continue;
        lanes.push_back(q.source);
      }
      taken.push_back(i);
    }
  }

  // Shared epilogue: drop `taken` from the queue (order of the
  // remainder is irrelevant — the next dispatch re-sorts).
  const auto drop_taken = [&] {
    std::vector<Pending> rest;
    rest.reserve(queue_.size() - taken.size());
    std::size_t t = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (t < taken.size() && taken[t] == i) {
        ++t;
        continue;
      }
      rest.push_back(queue_[i]);
    }
    queue_ = std::move(rest);
    note_queue_depth();
  };

  // One fused engine run on the simulated clock, under the lifecycle
  // policy: a failed attempt retries with exponential backoff against
  // the fault-free twin; exhaustion rejects the coalesced queries
  // explicitly (kEngineFailed) instead of stalling or dropping them.
  const sim::SimTime start = clock_;
  const LifecyclePolicy& lc = cfg_.lifecycle;
  engine::RunStats stats;
  std::vector<std::vector<std::uint32_t>> hop_dist;
  std::vector<std::vector<ScoredVertex>> ppr_ranked;
  std::vector<std::vector<std::uint64_t>> sssp_dist;
  const auto run_once = [&](const engine::EngineConfig& ecfg) {
    hop_dist.clear();
    ppr_ranked.clear();
    sssp_dist.clear();
    engine::RunStats s;
    if (is_hop_query(head.kind)) {
      auto res = algo::run_msbfs(dg_, sync_, topo_, params_, ecfg, lanes);
      s = std::move(res.stats);
      hop_dist = std::move(res.dist);
    } else if (head.kind == QueryKind::kPprTopK) {
      auto res = algo::run_ppr_batch(dg_, sync_, topo_, params_, ecfg, lanes,
                                     cfg_.ppr_alpha, cfg_.ppr_eps);
      s = std::move(res.stats);
      ppr_ranked.reserve(lanes.size());
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        ppr_ranked.push_back(rank_ppr(res.mass[i]));
      }
    } else {
      auto res = algo::run_mssssp(dg_, sync_, topo_, params_, ecfg, lanes);
      s = std::move(res.stats);
      sssp_dist = std::move(res.dist);
    }
    return s;
  };

  bool ran = false;
  std::string fail_what;
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      ++engine_attempts_;
      if (lc.enabled && engine_attempts_ <= lc.fail_attempts) {
        throw std::runtime_error("injected lifecycle failure (attempt " +
                                 std::to_string(engine_attempts_) + ")");
      }
      stats = run_once(attempt == 0 ? engine_cfg_ : fallback_cfg());
      ran = true;
      break;
    } catch (const std::exception& e) {
      if (!lc.enabled) throw;
      if (attempt >= lc.max_retries) {
        fail_what = e.what();
        break;
      }
      const double backoff_ms =
          lc.retry_backoff_ms * static_cast<double>(std::uint64_t{1} << attempt);
      clock_ += sim::SimTime::millisec(backoff_ms);
      ++report_.lifecycle.retries;
      flight().record(obs::FlightKind::kServeRetry, -1,
                      static_cast<std::int64_t>(attempt + 1),
                      static_cast<std::int64_t>(taken.size()), "retry",
                      clock_.seconds());
      if (auto* c = counter("serve.lifecycle.retries")) c->inc();
    }
  }
  if (!ran) {
    ++report_.lifecycle.engine_failures;
    flight().record(obs::FlightKind::kServeRetry, -1,
                    static_cast<std::int64_t>(lc.max_retries),
                    static_cast<std::int64_t>(taken.size()), "exhausted",
                    clock_.seconds());
    if (auto* c = counter("serve.lifecycle.engine_failures")) c->inc();
    for (const std::size_t i : taken) {
      const Pending& p = queue_[i];
      reject_answer(p, answers[p.out_index], RejectReason::kEngineFailed,
                    "engine run failed after " +
                        std::to_string(lc.max_retries) + " retries: " +
                        fail_what);
      --tenant_depth_[p.q.tenant];
    }
    drop_taken();
    return;
  }

  // Hedged re-dispatch: a batch straggling past hedge_factor x the
  // smoothed estimate launches a duplicate on the fault-free twin at
  // the detection instant; the earlier finish wins. The duplicate
  // recomputes identical labels, so answers cannot diverge.
  sim::SimTime effective = stats.total_time;
  const sim::SimTime est = batch_est_.value();
  if (lc.enabled && lc.hedge && est > sim::SimTime::zero() &&
      effective > est * lc.hedge_factor) {
    ++report_.lifecycle.hedges;
    if (auto* c = counter("serve.lifecycle.hedges")) c->inc();
    const sim::SimTime detect = est * lc.hedge_factor;
    const engine::RunStats dup = run_once(fallback_cfg());
    const sim::SimTime dup_finish = detect + dup.total_time;
    const bool win = dup_finish < effective;
    if (win) {
      effective = dup_finish;
      ++report_.lifecycle.hedge_wins;
      if (auto* c = counter("serve.lifecycle.hedge_wins")) c->inc();
    }
    flight().record(obs::FlightKind::kServeRetry, -1, win ? 1 : 0,
                    static_cast<std::int64_t>(taken.size()),
                    win ? "hedge_win" : "hedge", clock_.seconds());
  }
  batch_est_.observe(effective);
  const sim::SimTime finish = clock_ + effective;
  clock_ = finish;

  ++report_.engine_runs;
  report_.engine_sweeps += stats.global_rounds;
  report_.lanes_total += lanes.size();

  // Each lane's row lands in every shard home that had a query on it
  // (owner = the first such query's tenant in dispatch order); one
  // shared home and owner tagging only, when resharding is off.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> sinks(
      lanes.size());
  for (const std::size_t i : taken) {
    const Query& q = queue_[i].q;
    const std::size_t lane = lane_of(q.source);
    const std::uint32_t home = home_for(q.tenant);
    auto& v = sinks[lane];
    const bool present =
        std::any_of(v.begin(), v.end(),
                    [&](const auto& ho) { return ho.first == home; });
    if (!present) v.push_back({home, q.tenant});
  }
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    for (const auto& [home, owner] : sinks[i]) {
      if (is_hop_query(head.kind)) {
        caches_[home].put_bfs(lanes[i], cfg_.graph_epoch, hop_dist[i], owner);
      } else if (head.kind == QueryKind::kPprTopK) {
        caches_[home].put_ppr(lanes[i], cfg_.ppr_alpha, cfg_.ppr_eps,
                              cfg_.graph_epoch, ppr_ranked[i], owner);
      } else {
        caches_[home].put_sssp(lanes[i], cfg_.graph_epoch, sssp_dist[i],
                               owner);
      }
    }
  }

  if (cfg_.record_batches) {
    BatchRecord rec;
    rec.klass = head.kind == QueryKind::kKhopCount ? QueryKind::kBfsDist
                                                   : head.kind;
    rec.lane_sources = lanes;
    rec.rounds = stats.global_rounds;
    rec.start = start;
    rec.finish = finish;
    for (const std::size_t i : taken) rec.query_ids.push_back(queue_[i].q.id);
    batches_.push_back(std::move(rec));
  }
  engine_stats_.push_back(std::move(stats));

  // Answer every coalesced query at the shared completion instant.
  for (const std::size_t i : taken) {
    const Pending& p = queue_[i];
    Answer& a = answers[p.out_index];
    if (is_hop_query(p.q.kind)) {
      answer_from_dist(p.q, hop_dist[lane_of(p.q.source)], a);
    } else if (p.q.kind == QueryKind::kPprTopK) {
      const auto& ranked = ppr_ranked[lane_of(p.q.source)];
      const std::size_t k = std::min<std::size_t>(p.q.k, ranked.size());
      a.topk.assign(ranked.begin(), ranked.begin() + k);
    } else {
      a.distance = sssp_dist[lane_of(p.q.source)][p.q.target];
    }
    finish_answer(p, a, finish, /*from_cache=*/false);
    --tenant_depth_[p.q.tenant];
  }

  drop_taken();
}

std::vector<Answer> BatchScheduler::run(std::span<const Query> queries) {
  std::vector<Answer> answers(queries.size());
  std::size_t next = 0;
  while (next < queries.size() || !queue_.empty()) {
    if (queue_.empty()) {
      // Idle: jump to the next arrival (the clock never runs backward).
      clock_ = sim::max(clock_, queries[next].arrival);
    }
    admit_until(clock_, queries, next, answers);
    if (queue_.empty()) continue;  // everything rejected or cache-served
    dispatch_batch(answers);
  }

  report_.p50_latency_us = percentile(latencies_us_, 50.0);
  report_.p99_latency_us = percentile(latencies_us_, 99.0);
  std::uint64_t met = 0;
  for (std::size_t t = 0; t < report_.tenants.size(); ++t) {
    auto& ts = report_.tenants[t];
    ts.p50_latency_us = percentile(tenant_latencies_us_[t], 50.0);
    ts.p99_latency_us = percentile(tenant_latencies_us_[t], 99.0);
    met += ts.deadline_met;
  }
  report_.deadline_hit_ratio =
      report_.served > 0
          ? static_cast<double>(met) / static_cast<double>(report_.served)
          : 0.0;
  report_.brownout_transitions = brownout_.transitions();
  report_.brownout_peak_tier = brownout_.peak_tier();
  return answers;
}

std::string BatchScheduler::report_json(double host_wall_ms) const {
  const ResultCache::Stats cs = cache_stats();
  const auto reject_breakdown = [](obs::JsonWriter& w, const auto& by) {
    w.key("rejects").begin_object();
    for (std::size_t i = 1; i < kRejectReasonCount; ++i) {
      if (by[i] > 0) {
        w.kv(to_string(static_cast<RejectReason>(i)), by[i]);
      }
    }
    w.end_object();
  };
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "sg.serve.report");
  w.kv("version", kServeReportVersion);
  w.key("config").begin_object();
  w.kv("batch_width", cfg_.batch_width);
  w.kv("ppr_batch_width", cfg_.ppr_batch_width);
  w.kv("max_queue_depth", cfg_.max_queue_depth);
  w.kv("dist_cache_capacity", cfg_.dist_cache_capacity);
  w.kv("ppr_cache_capacity", cfg_.ppr_cache_capacity);
  w.kv("ppr_alpha", cfg_.ppr_alpha);
  w.kv("ppr_eps", cfg_.ppr_eps);
  w.kv("graph_epoch", cfg_.graph_epoch);
  // The robustness knobs surface only when armed, so a default config
  // block is byte-identical to one from a build without the layer.
  if (cfg_.brownout.enabled) {
    w.kv("brownout_max_tier", cfg_.brownout.max_tier);
  }
  if (cfg_.reshard.enabled) {
    w.kv("reshard_homes", static_cast<std::uint64_t>(caches_.size()));
  }
  if (cfg_.lifecycle.enabled) {
    w.kv("lifecycle_max_retries", cfg_.lifecycle.max_retries);
  }
  w.end_object();
  w.key("totals").begin_object();
  w.kv("submitted", report_.submitted);
  w.kv("admitted", report_.admitted);
  w.kv("rejected", report_.rejected);
  if (report_.rejected > 0) {
    reject_breakdown(w, report_.rejected_by_reason);
  }
  w.kv("served", report_.served);
  w.kv("served_from_cache", report_.served_from_cache);
  if (report_.degraded_served > 0) {
    w.kv("degraded", report_.degraded_served);
  }
  w.kv("max_queue_depth_seen", report_.max_queue_depth_seen);
  w.kv("makespan_s", report_.makespan.seconds());
  w.end_object();
  w.key("latency").begin_object();
  w.kv("p50_us", report_.p50_latency_us);
  w.kv("p99_us", report_.p99_latency_us);
  w.kv("deadline_hit_ratio", report_.deadline_hit_ratio);
  w.end_object();
  if (!report_.by_priority.empty()) {
    w.key("priorities").begin_array();
    for (std::size_t p = 0; p < report_.by_priority.size(); ++p) {
      const PriorityStats& ps = report_.by_priority[p];
      w.begin_object();
      w.kv("priority", static_cast<std::uint64_t>(p));
      w.kv("served", ps.served);
      w.kv("deadline_met", ps.deadline_met);
      w.end_object();
    }
    w.end_array();
  }
  w.key("engine").begin_object();
  w.kv("runs", report_.engine_runs);
  w.kv("sweeps", report_.engine_sweeps);
  w.kv("lanes_total", report_.lanes_total);
  w.end_object();
  w.key("cache").begin_object();
  w.kv("hits", cs.hits);
  w.kv("misses", cs.misses);
  w.kv("insertions", cs.insertions);
  w.kv("evictions", cs.evictions);
  w.kv("invalidations", cs.invalidations);
  w.end_object();
  // Robustness sections are nonzero-gated: idle (or disabled)
  // machinery leaves the report byte-identical.
  if (report_.brownout_transitions > 0 || report_.degraded_served > 0 ||
      report_.rejected_by_reason[static_cast<std::size_t>(
          RejectReason::kBrownoutShed)] > 0) {
    w.key("brownout").begin_object();
    w.kv("transitions", report_.brownout_transitions);
    w.kv("peak_tier", report_.brownout_peak_tier);
    w.kv("degraded", report_.degraded_served);
    w.kv("shed", report_.rejected_by_reason[static_cast<std::size_t>(
                     RejectReason::kBrownoutShed)]);
    w.end_object();
  }
  if (report_.reshard_migrations > 0) {
    w.key("reshard").begin_object();
    w.kv("migrations", report_.reshard_migrations);
    w.kv("bytes", report_.reshard_bytes);
    w.end_object();
  }
  if (report_.lifecycle.any()) {
    w.key("lifecycle").begin_object();
    w.kv("timeouts", report_.lifecycle.timeouts);
    w.kv("infeasible", report_.lifecycle.infeasible);
    w.kv("retries", report_.lifecycle.retries);
    w.kv("engine_failures", report_.lifecycle.engine_failures);
    w.kv("hedges", report_.lifecycle.hedges);
    w.kv("hedge_wins", report_.lifecycle.hedge_wins);
    w.end_object();
  }
  w.key("tenants").begin_array();
  for (std::size_t t = 0; t < report_.tenants.size(); ++t) {
    const TenantStats& ts = report_.tenants[t];
    w.begin_object();
    w.kv("tenant", static_cast<std::uint64_t>(t));
    w.kv("submitted", ts.submitted);
    w.kv("admitted", ts.admitted);
    w.kv("rejected", ts.rejected);
    if (ts.rejected > 0) {
      reject_breakdown(w, ts.rejected_by_reason);
    }
    w.kv("served", ts.served);
    if (ts.degraded > 0) {
      w.kv("degraded", ts.degraded);
    }
    w.kv("deadline_met", ts.deadline_met);
    w.kv("p50_us", ts.p50_latency_us);
    w.kv("p99_us", ts.p99_latency_us);
    w.end_object();
  }
  w.end_array();
  if (host_wall_ms >= 0.0) {
    // Measured wall time of the whole trace replay on this machine —
    // marked nondeterministic so byte-identity tooling knows to stop at
    // the `tenants` array (the default omits this section entirely).
    w.key("host").begin_object();
    w.kv("nondeterministic", true);
    w.kv("wall_ms", host_wall_ms);
    w.kv("queries_per_sec",
         host_wall_ms > 0.0
             ? static_cast<double>(report_.served) / (host_wall_ms / 1e3)
             : 0.0);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace sg::serve
