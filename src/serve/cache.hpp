#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/types.hpp"
#include "partition/blob_io.hpp"
#include "serve/query.hpp"

namespace sg::serve {

/// Serving-layer result cache, two compartments:
///
///  * Landmark-distance cache: one entry per (family, source) holding
///    the full distance array from that source — the by-product of an
///    msbfs lane or sssp run. Any later s-t or k-hop query against a
///    cached landmark answers without the engine.
///  * PPR memo: the ranked score list per (seed, alpha, eps), serving
///    top-k requests of any k.
///
/// Every key carries the graph epoch: bumping the epoch (graph
/// mutation) strands old entries, which are swept out and counted as
/// invalidations. Eviction is deterministic LRU on a logical access
/// tick. Keys use std::map so iteration (and therefore eviction
/// tie-breaking and stats) is platform-independent.
///
/// Entries carry the tenant whose query inserted them (`owner`), which
/// the elastic resharding layer uses to migrate a tenant's working set
/// between shard homes: extract_tenant() archives and removes one
/// owner's entries, absorb() replays the archive into another cache —
/// bit-exact by construction (the row bytes round-trip untouched).
class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  ///< entries dropped by epoch bump

    Stats& operator+=(const Stats& o) {
      hits += o.hits;
      misses += o.misses;
      insertions += o.insertions;
      evictions += o.evictions;
      invalidations += o.invalidations;
      return *this;
    }
  };

  ResultCache(std::uint32_t dist_capacity, std::uint32_t ppr_capacity)
      : dist_capacity_(dist_capacity), ppr_capacity_(ppr_capacity) {}

  /// nullptr on miss. Hits refresh LRU recency and count into stats.
  [[nodiscard]] const std::vector<std::uint32_t>* find_bfs(
      graph::VertexId source, std::uint64_t epoch);
  [[nodiscard]] const std::vector<std::uint64_t>* find_sssp(
      graph::VertexId source, std::uint64_t epoch);
  [[nodiscard]] const std::vector<ScoredVertex>* find_ppr(
      graph::VertexId seed, double alpha, double eps, std::uint64_t epoch);

  void put_bfs(graph::VertexId source, std::uint64_t epoch,
               std::vector<std::uint32_t> dist, std::uint32_t owner = 0);
  void put_sssp(graph::VertexId source, std::uint64_t epoch,
                std::vector<std::uint64_t> dist, std::uint32_t owner = 0);
  void put_ppr(graph::VertexId seed, double alpha, double eps,
               std::uint64_t epoch, std::vector<ScoredVertex> ranked,
               std::uint32_t owner = 0);

  /// Brownout degraded answers: the tightest landmark triangle-
  /// inequality upper bound min_l d(l,s) + d(l,t) over the cached
  /// landmark rows of `epoch` (valid on symmetric graphs, where
  /// d(l,s) = d(s,l)). kUnreachable when no cached landmark reaches
  /// both endpoints. Read-only: neither LRU recency nor hit/miss stats
  /// move, so arming brownout cannot perturb cache accounting.
  [[nodiscard]] std::uint64_t hop_bound(graph::VertexId s, graph::VertexId t,
                                        std::uint64_t epoch) const;
  [[nodiscard]] std::uint64_t sssp_bound(graph::VertexId s, graph::VertexId t,
                                         std::uint64_t epoch) const;

  /// Drops every entry whose epoch differs from `current_epoch`.
  void invalidate_stale(std::uint64_t current_epoch);

  /// Archives every entry owned by `owner` into `w` (deterministic key
  /// order) and removes them from this cache. The archive starts with
  /// per-compartment counts so absorb() can replay it without a schema.
  void extract_tenant(std::uint32_t owner, partition::ByteWriter& w);
  /// Replays an extract_tenant() archive into this cache: entries keep
  /// their key, epoch, owner, and exact row bytes, gain fresh LRU
  /// recency here, and evict LRU overflow against this cache's budget.
  void absorb(partition::ByteReader& r);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t dist_entries() const {
    return bfs_.size() + sssp_.size();
  }
  [[nodiscard]] std::size_t ppr_entries() const { return ppr_.size(); }
  /// Entries owned by `owner` across all compartments.
  [[nodiscard]] std::size_t owned_entries(std::uint32_t owner) const;

 private:
  template <typename V>
  struct Entry {
    V value;
    std::uint64_t epoch = 0;
    std::uint64_t tick = 0;  ///< last-access order (LRU)
    std::uint32_t owner = 0;  ///< tenant whose query inserted the entry
  };

  struct PprKey {
    graph::VertexId seed = 0;
    std::uint64_t alpha_bits = 0;
    std::uint64_t eps_bits = 0;
    std::uint64_t epoch = 0;

    friend bool operator<(const PprKey& a, const PprKey& b) {
      if (a.seed != b.seed) return a.seed < b.seed;
      if (a.alpha_bits != b.alpha_bits) return a.alpha_bits < b.alpha_bits;
      if (a.eps_bits != b.eps_bits) return a.eps_bits < b.eps_bits;
      return a.epoch < b.epoch;
    }
  };

  using DistKey = std::pair<graph::VertexId, std::uint64_t>;  // src, epoch

  template <typename Map>
  void evict_lru(Map& map, std::size_t other_size, std::uint32_t capacity);

  std::uint32_t dist_capacity_;
  std::uint32_t ppr_capacity_;
  std::uint64_t tick_ = 0;
  std::map<DistKey, Entry<std::vector<std::uint32_t>>> bfs_;
  std::map<DistKey, Entry<std::vector<std::uint64_t>>> sssp_;
  std::map<PprKey, Entry<std::vector<ScoredVertex>>> ppr_;
  Stats stats_;
};

}  // namespace sg::serve
