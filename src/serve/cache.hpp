#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/types.hpp"
#include "serve/query.hpp"

namespace sg::serve {

/// Serving-layer result cache, two compartments:
///
///  * Landmark-distance cache: one entry per (family, source) holding
///    the full distance array from that source — the by-product of an
///    msbfs lane or sssp run. Any later s-t or k-hop query against a
///    cached landmark answers without the engine.
///  * PPR memo: the ranked score list per (seed, alpha, eps), serving
///    top-k requests of any k.
///
/// Every key carries the graph epoch: bumping the epoch (graph
/// mutation) strands old entries, which are swept out and counted as
/// invalidations. Eviction is deterministic LRU on a logical access
/// tick. Keys use std::map so iteration (and therefore eviction
/// tie-breaking and stats) is platform-independent.
class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  ///< entries dropped by epoch bump
  };

  ResultCache(std::uint32_t dist_capacity, std::uint32_t ppr_capacity)
      : dist_capacity_(dist_capacity), ppr_capacity_(ppr_capacity) {}

  /// nullptr on miss. Hits refresh LRU recency and count into stats.
  [[nodiscard]] const std::vector<std::uint32_t>* find_bfs(
      graph::VertexId source, std::uint64_t epoch);
  [[nodiscard]] const std::vector<std::uint64_t>* find_sssp(
      graph::VertexId source, std::uint64_t epoch);
  [[nodiscard]] const std::vector<ScoredVertex>* find_ppr(
      graph::VertexId seed, double alpha, double eps, std::uint64_t epoch);

  void put_bfs(graph::VertexId source, std::uint64_t epoch,
               std::vector<std::uint32_t> dist);
  void put_sssp(graph::VertexId source, std::uint64_t epoch,
                std::vector<std::uint64_t> dist);
  void put_ppr(graph::VertexId seed, double alpha, double eps,
               std::uint64_t epoch, std::vector<ScoredVertex> ranked);

  /// Drops every entry whose epoch differs from `current_epoch`.
  void invalidate_stale(std::uint64_t current_epoch);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t dist_entries() const {
    return bfs_.size() + sssp_.size();
  }
  [[nodiscard]] std::size_t ppr_entries() const { return ppr_.size(); }

 private:
  template <typename V>
  struct Entry {
    V value;
    std::uint64_t epoch = 0;
    std::uint64_t tick = 0;  ///< last-access order (LRU)
  };

  struct PprKey {
    graph::VertexId seed = 0;
    std::uint64_t alpha_bits = 0;
    std::uint64_t eps_bits = 0;
    std::uint64_t epoch = 0;

    friend bool operator<(const PprKey& a, const PprKey& b) {
      if (a.seed != b.seed) return a.seed < b.seed;
      if (a.alpha_bits != b.alpha_bits) return a.alpha_bits < b.alpha_bits;
      if (a.eps_bits != b.eps_bits) return a.eps_bits < b.eps_bits;
      return a.epoch < b.epoch;
    }
  };

  using DistKey = std::pair<graph::VertexId, std::uint64_t>;  // src, epoch

  template <typename Map>
  void evict_lru(Map& map, std::size_t other_size, std::uint32_t capacity);

  std::uint32_t dist_capacity_;
  std::uint32_t ppr_capacity_;
  std::uint64_t tick_ = 0;
  std::map<DistKey, Entry<std::vector<std::uint32_t>>> bfs_;
  std::map<DistKey, Entry<std::vector<std::uint64_t>>> sssp_;
  std::map<PprKey, Entry<std::vector<ScoredVertex>>> ppr_;
  Stats stats_;
};

}  // namespace sg::serve
