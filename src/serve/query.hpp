#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "sim/sim_time.hpp"

namespace sg::serve {

/// Distance sentinel shared by the s-t answers (wide enough for sssp;
/// bfs answers are widened into it).
inline constexpr std::uint64_t kUnreachable =
    std::numeric_limits<std::uint64_t>::max();

/// Point-query families the serving layer batches into shared engine
/// runs. kBfsDist and kKhopCount share msbfs lanes (both are unweighted
/// hop-distance queries), kSsspDist queries share mssssp lanes (the
/// weighted sibling), kPprTopK queries share ppr-batch lanes.
enum class QueryKind : std::uint8_t {
  kBfsDist,    ///< s-t hop distance
  kSsspDist,   ///< s-t weighted shortest-path distance
  kPprTopK,    ///< top-k personalized-pagerank neighbors of a seed
  kKhopCount,  ///< size (+ digest) of the k-hop neighborhood of a seed
};

[[nodiscard]] inline const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kBfsDist:
      return "bfs-dist";
    case QueryKind::kSsspDist:
      return "sssp-dist";
    case QueryKind::kPprTopK:
      return "ppr-topk";
    case QueryKind::kKhopCount:
      return "khop";
  }
  return "?";
}

/// One tenant-tagged point query on the simulated clock.
struct Query {
  std::uint64_t id = 0;        ///< unique; the deterministic tie-breaker
  std::uint32_t tenant = 0;
  std::uint32_t priority = 0;  ///< 0 is most urgent
  sim::SimTime arrival;        ///< open-loop arrival instant
  sim::SimTime deadline = sim::SimTime::max();  ///< absolute SLO deadline
  QueryKind kind = QueryKind::kBfsDist;
  graph::VertexId source = 0;  ///< source / seed vertex
  graph::VertexId target = 0;  ///< kBfsDist / kSsspDist only
  std::uint32_t k = 0;         ///< kPprTopK: result size; kKhopCount: radius
};

enum class RejectReason : std::uint8_t {
  kNone,
  kRateLimited,         ///< tenant token bucket empty
  kQueueFull,           ///< global admission queue at capacity
  kTenantQueueFull,     ///< per-tenant queued share at capacity
  kUnknownVertex,       ///< source/target outside the graph
  kDeadlineInfeasible,  ///< deadline unmeetable (lifecycle timeout)
  kBrownoutShed,        ///< shed by the brownout overload controller
  kEngineFailed,        ///< engine runs exhausted the retry budget
};

/// Number of RejectReason values (kNone included), for breakdown arrays.
inline constexpr std::size_t kRejectReasonCount = 8;

[[nodiscard]] inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kRateLimited:
      return "rate-limited";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kTenantQueueFull:
      return "tenant-queue-full";
    case RejectReason::kUnknownVertex:
      return "unknown-vertex";
    case RejectReason::kDeadlineInfeasible:
      return "deadline-infeasible";
    case RejectReason::kBrownoutShed:
      return "brownout-shed";
    case RejectReason::kEngineFailed:
      return "engine-failed";
  }
  return "?";
}

/// One scored result of a top-k query.
struct ScoredVertex {
  graph::VertexId vertex = 0;
  double score = 0.0;

  friend bool operator==(const ScoredVertex&, const ScoredVertex&) = default;
};

/// The serving layer's reply. `payload()` is the canonical answer
/// bytes: a cache hit must reproduce the cold-miss payload exactly
/// (byte-identity is tested), so timing/provenance fields live outside
/// it.
struct Answer {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  QueryKind kind = QueryKind::kBfsDist;

  bool served = false;
  RejectReason reject_reason = RejectReason::kNone;
  std::string reject_detail;  ///< human-readable admission verdict

  std::uint64_t distance = kUnreachable;  ///< kBfsDist / kSsspDist
  std::vector<ScoredVertex> topk;         ///< kPprTopK
  std::uint64_t khop_count = 0;           ///< kKhopCount
  std::uint64_t khop_digest = 0;          ///< FNV-1a of the member set

  bool from_cache = false;
  /// True when the brownout controller answered approximately (landmark
  /// triangle-inequality upper bound) instead of running the engine.
  /// Provenance, not payload: a degraded s-t distance is an upper bound
  /// on the exact answer, never a different answer family.
  bool degraded = false;
  sim::SimTime completed;
  bool deadline_met = true;

  /// Canonical result bytes (deterministic; excludes timing and cache
  /// provenance).
  [[nodiscard]] std::string payload() const;
};

}  // namespace sg::serve
