#include "serve/admission.hpp"

#include "obs/json.hpp"

namespace sg::serve {

AdmissionController::AdmissionController(TenantLimits default_limits,
                                         std::vector<TenantLimits> per_tenant,
                                         std::uint32_t max_queue_depth)
    : default_limits_(default_limits),
      per_tenant_(std::move(per_tenant)),
      max_queue_depth_(max_queue_depth) {}

const TenantLimits& AdmissionController::limits(std::uint32_t tenant) const {
  if (tenant < per_tenant_.size()) return per_tenant_[tenant];
  return default_limits_;
}

TokenBucket& AdmissionController::bucket(std::uint32_t tenant) {
  while (buckets_.size() <= tenant) {
    const TenantLimits& lim =
        limits(static_cast<std::uint32_t>(buckets_.size()));
    buckets_.emplace_back(lim.rate_qps, lim.burst);
  }
  return buckets_[tenant];
}

AdmissionDecision AdmissionController::admit(const Query& q,
                                             std::uint32_t queue_depth,
                                             std::uint32_t tenant_depth,
                                             sim::SimTime est_service) {
  const TenantLimits& lim = limits(q.tenant);
  AdmissionDecision d;
  if (est_service > sim::SimTime::zero() &&
      q.deadline < q.arrival + est_service) {
    d.admitted = false;
    d.reason = RejectReason::kDeadlineInfeasible;
    d.detail = "deadline " +
               obs::format_double((q.deadline - q.arrival).millis()) +
               " ms slack below the " +
               obs::format_double(est_service.millis()) +
               " ms estimated service floor";
    return d;
  }
  if (queue_depth >= max_queue_depth_) {
    d.admitted = false;
    d.reason = RejectReason::kQueueFull;
    d.detail = "admission queue at capacity (" +
               std::to_string(max_queue_depth_) + " queued)";
    return d;
  }
  if (tenant_depth >= lim.max_queued) {
    d.admitted = false;
    d.reason = RejectReason::kTenantQueueFull;
    d.detail = "tenant " + std::to_string(q.tenant) +
               " at its queued-query bound (" +
               std::to_string(lim.max_queued) + ")";
    return d;
  }
  TokenBucket& b = bucket(q.tenant);
  const double available = b.peek(q.arrival);
  if (!b.try_take(q.arrival)) {
    d.admitted = false;
    d.reason = RejectReason::kRateLimited;
    d.detail = "tenant " + std::to_string(q.tenant) + " over its " +
               obs::format_double(lim.rate_qps) + " qps rate (" +
               obs::format_double(available) + " of " +
               obs::format_double(lim.burst) + " tokens)";
    return d;
  }
  return d;
}

}  // namespace sg::serve
