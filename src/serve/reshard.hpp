#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "partition/blob_io.hpp"
#include "sim/sim_time.hpp"

namespace sg::serve {

/// Knobs for elastic tenant resharding. Disabled by default: an
/// unarmed scheduler keeps the single shared serving home it always
/// had, so the default path is bit-identical.
struct ReshardPolicy {
  bool enabled = false;
  /// Shard homes serving state is spread over (each home owns a
  /// result-cache partition sized total/num_homes). 0 falls back to 2.
  std::uint32_t num_homes = 2;
  /// EWMA smoothing of per-tenant served-load samples per evaluation.
  double ewma_alpha = 0.3;
  /// Hysteresis on the home imbalance ratio (hottest home load over
  /// mean home load): must hold >= imbalance_on for sustain_evals
  /// evaluations to migrate, re-arms below imbalance_off, and
  /// cooldown_evals evaluations pass between migrations.
  double imbalance_on = 1.6;
  double imbalance_off = 1.2;
  int sustain_evals = 2;
  int cooldown_evals = 3;
  /// Migration budget for the scheduler's lifetime (0 = unlimited).
  std::uint32_t max_migrations = 16;
  /// Modeled interconnect feeding state migrations (GB/s); the blob
  /// transfer charges the serving clock at this rate.
  double migration_gbps = 8.0;
};

/// In-memory checksummed envelope for serving-state migration blobs:
/// magic(4) | version(4) | payload_size(8) | payload | fnv1a64(8) —
/// the same layout partition::write_checksummed_file puts on disk, so
/// a migration is bit-exact by construction: open_blob() recomputes
/// the FNV-1a digest over the payload and throws on any mismatch
/// before a single byte reaches the destination home.
inline constexpr std::array<char, 4> kReshardMagic{'S', 'G', 'R', 'S'};
inline constexpr std::uint32_t kReshardBlobVersion = 1;

[[nodiscard]] std::vector<char> seal_blob(const std::vector<char>& payload);
[[nodiscard]] std::vector<char> open_blob(const std::vector<char>& blob,
                                          const std::string& context);

/// Decides when and where serving state moves. The scheduler feeds it
/// per-tenant served-query counts at every dispatch boundary;
/// evaluate() folds them into per-tenant load EWMAs, computes the
/// per-home imbalance ratio, applies gray-style sustain/cooldown
/// hysteresis, and — when the skew persists — proposes migrating the
/// hottest improvable tenant from the hottest home to the least-loaded
/// one. The scheduler performs the actual state movement (cache slice
/// + token-bucket accounting through the checksummed envelope above)
/// and then confirms with apply(). Deterministic throughout: loads are
/// simulated-clock quantities and every tie breaks on the lowest id.
class ReshardManager {
 public:
  ReshardManager() = default;
  explicit ReshardManager(const ReshardPolicy& policy) : policy_(policy) {
    if (policy_.num_homes == 0) policy_.num_homes = 2;
  }

  [[nodiscard]] bool enabled() const { return policy_.enabled; }
  [[nodiscard]] std::uint32_t num_homes() const { return policy_.num_homes; }
  [[nodiscard]] const ReshardPolicy& policy() const { return policy_; }

  /// Home of `tenant` (tenants start round-robin: tenant % num_homes).
  [[nodiscard]] std::uint32_t home_of(std::uint32_t tenant) const {
    if (tenant < home_.size()) return home_[tenant];
    return tenant % policy_.num_homes;
  }

  /// Accumulates `queries` served for `tenant` since the last
  /// evaluation (the window sample the EWMA folds in).
  void note_served(std::uint32_t tenant, double queries);

  struct Move {
    std::uint32_t tenant = 0;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    double imbalance = 0.0;
  };

  /// Folds the window into the EWMAs and advances the hysteresis
  /// machine; returns the migration to perform at this safe batch
  /// boundary, if any.
  [[nodiscard]] std::optional<Move> evaluate();

  /// Confirms the scheduler executed `m`: re-homes the tenant, spends
  /// one unit of migration budget, and starts the cooldown.
  void apply(const Move& m);

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] double imbalance() const { return imbalance_; }
  [[nodiscard]] double load(std::uint32_t tenant) const {
    return tenant < load_.size() ? load_[tenant] : 0.0;
  }

 private:
  void ensure_tenant(std::uint32_t tenant);

  ReshardPolicy policy_;
  std::vector<std::uint32_t> home_;  ///< per-tenant home assignment
  std::vector<double> load_;         ///< per-tenant load EWMA
  std::vector<double> window_;       ///< samples since last evaluation
  double imbalance_ = 0.0;
  int sustain_ = 0;
  int cooldown_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace sg::serve
