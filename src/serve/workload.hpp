#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/query.hpp"
#include "sim/rng.hpp"

namespace sg::serve {

/// Deterministic Zipf sampler over [0, n) with weights
/// w_i = 1 / (i+1)^s, built as a Vose alias table: O(n) construction,
/// O(1) samples, and exactly one rng.uniform() draw per sample (the
/// draw picks the column and the accept/alias coin at once). Pinned by
/// a golden-values test — any change to the construction or the draw
/// discipline shifts every workload trace and must be deliberate.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(sim::Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  /// Acceptance threshold / alias target of one column (test access).
  [[nodiscard]] double prob(std::size_t i) const { return prob_[i]; }
  [[nodiscard]] std::size_t alias(std::size_t i) const { return alias_[i]; }

 private:
  std::vector<double> prob_;        ///< scaled acceptance probability
  std::vector<std::size_t> alias_;  ///< fallback column on rejection
};

/// Seeded synthetic multi-tenant workload: open-loop Poisson arrivals on
/// the simulated clock, Zipf-skewed tenants and sources, a fixed query
/// mix, and uniform deadline slack. Everything flows through one
/// sim::Rng stream, so a (spec, num_vertices) pair always yields the
/// same query trace byte-for-byte.
struct WorkloadSpec {
  std::uint32_t num_queries = 1200;
  std::uint32_t num_tenants = 6;
  /// Aggregate open-loop arrival rate (queries / sim-second). The
  /// default is deliberately far above 1/engine-run-time on the bench
  /// graphs: an open-loop serving layer only gets to batch when queries
  /// arrive faster than fused runs complete, and wide batches need tens
  /// of distinct uncached sources queued at each dispatch.
  double arrival_rate_qps = 120000.0;
  /// Zipf exponent over tenants (0 = uniform; higher = heavier tenant 0).
  double tenant_skew = 1.2;
  /// Zipf exponent over the source pool (popular landmarks repeat, which
  /// is what gives the result cache something to do).
  double source_skew = 0.9;
  /// Distinct source/seed vertices drawn up front from the graph.
  std::uint32_t source_pool = 160;
  /// Query-mix fractions (remainder after the three below is sssp-dist).
  double bfs_frac = 0.55;
  double khop_frac = 0.20;
  double ppr_frac = 0.15;
  /// Deadline slack, uniform in [lo, hi] milliseconds past arrival.
  double deadline_slack_lo_ms = 2.0;
  double deadline_slack_hi_ms = 100.0;
  std::uint32_t priorities = 3;  ///< priority drawn uniform in [0, this)
  std::uint64_t seed = 42;
};

/// Generates the arrival-ordered query trace for a graph with
/// `num_vertices` vertices. Query ids are 0..num_queries-1 in arrival
/// order.
[[nodiscard]] std::vector<Query> generate_workload(const WorkloadSpec& spec,
                                                   std::uint32_t num_vertices);

}  // namespace sg::serve
