#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_time.hpp"

namespace sg::serve {

/// Knobs for the brownout overload controller. Everything defaults to
/// a disabled, zero-cost state: an unarmed scheduler never constructs
/// signals, so the default serving path is bit-identical with or
/// without this file compiled in.
struct BrownoutPolicy {
  bool enabled = false;
  /// Highest degradation tier:
  ///   0 — normal service (full batched engine answers);
  ///   1 — degrade: answer what the cache / landmark triangle bounds
  ///       can (tagged degraded:true), engine-serve the rest;
  ///   2 — shed: additionally reject priorities >= shed_priority_floor
  ///       deterministically (kBrownoutShed).
  int max_tier = 2;
  /// Signal weights. Queue pressure is queue_depth / max_queue_depth;
  /// deadline pressure is the fraction of queued queries whose deadline
  /// precedes now + estimated batch time.
  double queue_weight = 1.0;
  double deadline_weight = 1.0;
  /// EWMA smoothing applied to the fused score each evaluation.
  double ewma_alpha = 0.4;
  /// Hysteresis, styled after fault/gray: the smoothed score must hold
  /// >= score_on for sustain_evals consecutive evaluations to escalate
  /// one tier, and <= score_off for sustain_evals to de-escalate;
  /// cooldown_evals evaluations must pass between tier moves.
  double score_on = 0.8;
  double score_off = 0.35;
  int sustain_evals = 2;
  int cooldown_evals = 2;
  /// Per-tenant fairness: a tenant whose smoothed share of the queue
  /// exceeds hot_share is "hot". When any tenant is hot, cold tenants
  /// experience one tier less than the controller's global tier — one
  /// hot tenant cannot brown out the others. Under uniform overload
  /// (nobody hot) every tenant experiences the global tier.
  double hot_share = 0.35;
  /// Priorities below this are never shed (0 = most urgent class).
  std::uint32_t shed_priority_floor = 1;
};

/// Hysteretic overload controller on the simulated clock. The
/// scheduler snapshots its queue at every dispatch boundary and calls
/// evaluate(); the controller fuses queue-depth and deadline-
/// feasibility pressure into one EWMA score, applies gray-style
/// sustain/cooldown hysteresis, and maintains the global brownout tier
/// plus per-tenant hot/cold classification. It never acts by itself:
/// the scheduler reads tier decisions back and performs the shedding /
/// degrading, recording each transition as a flight event and metric.
/// All state is deterministic — same trace, same decisions.
class BrownoutController {
 public:
  BrownoutController() = default;
  explicit BrownoutController(const BrownoutPolicy& policy)
      : policy_(policy) {}

  [[nodiscard]] bool enabled() const { return policy_.enabled; }
  [[nodiscard]] int tier() const { return tier_; }
  [[nodiscard]] double score() const { return score_; }
  [[nodiscard]] const BrownoutPolicy& policy() const { return policy_; }

  /// One queued query, as the controller sees it.
  struct QueuedView {
    std::uint32_t tenant = 0;
    std::uint32_t priority = 0;
    sim::SimTime deadline = sim::SimTime::max();
  };

  /// Outcome of one evaluation.
  struct Verdict {
    int tier = 0;
    int previous_tier = 0;
    bool changed = false;
    double score = 0.0;
  };

  /// Fuses the signals at dispatch instant `now` and advances the
  /// hysteresis machine. `est_batch` is the scheduler's smoothed
  /// engine-run time estimate (zero while cold — the deadline signal
  /// stays quiet until the estimate warms up, so a scheduler that never
  /// dispatched cannot brown out on its first batch).
  Verdict evaluate(sim::SimTime now, const std::vector<QueuedView>& queued,
                   std::uint32_t max_queue_depth, sim::SimTime est_batch);

  /// The tier `tenant` actually experiences under the fairness rule.
  [[nodiscard]] int effective_tier(std::uint32_t tenant) const;
  [[nodiscard]] bool hot(std::uint32_t tenant) const;

  /// True when `priority` is sheddable at `tenant`'s effective tier.
  [[nodiscard]] bool should_shed(std::uint32_t tenant,
                                 std::uint32_t priority) const {
    return effective_tier(tenant) >= 2 &&
           priority >= policy_.shed_priority_floor;
  }
  /// True when `tenant`'s queries should be answered degraded
  /// (cache-only / landmark bound) instead of engine-served.
  [[nodiscard]] bool should_degrade(std::uint32_t tenant) const {
    return effective_tier(tenant) >= 1;
  }

  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] int peak_tier() const { return peak_tier_; }

 private:
  BrownoutPolicy policy_;
  int tier_ = 0;
  double score_ = 0.0;
  int sustain_up_ = 0;
  int sustain_down_ = 0;
  int cooldown_ = 0;
  int peak_tier_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t transitions_ = 0;
  std::vector<double> tenant_share_;  ///< smoothed queue share per tenant
  bool any_hot_ = false;
};

}  // namespace sg::serve
