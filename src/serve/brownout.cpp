#include "serve/brownout.hpp"

#include <algorithm>

namespace sg::serve {

BrownoutController::Verdict BrownoutController::evaluate(
    sim::SimTime now, const std::vector<QueuedView>& queued,
    std::uint32_t max_queue_depth, sim::SimTime est_batch) {
  Verdict v;
  v.previous_tier = tier_;
  if (!policy_.enabled) {
    v.tier = 0;
    return v;
  }
  ++evaluations_;

  // Raw signals at this dispatch boundary.
  const double depth = static_cast<double>(queued.size());
  const double queue_pressure =
      max_queue_depth > 0 ? depth / static_cast<double>(max_queue_depth) : 0.0;
  double deadline_pressure = 0.0;
  if (est_batch > sim::SimTime::zero() && !queued.empty()) {
    std::size_t infeasible = 0;
    const sim::SimTime horizon = now + est_batch;
    for (const QueuedView& q : queued) {
      if (q.deadline < horizon) ++infeasible;
    }
    deadline_pressure = static_cast<double>(infeasible) / depth;
  }
  const double raw = policy_.queue_weight * queue_pressure +
                     policy_.deadline_weight * deadline_pressure;
  score_ = policy_.ewma_alpha * raw + (1.0 - policy_.ewma_alpha) * score_;

  // Per-tenant queue-share EWMA drives the fairness classification.
  std::vector<double> share;
  for (const QueuedView& q : queued) {
    if (q.tenant >= share.size()) share.resize(q.tenant + 1, 0.0);
    share[q.tenant] += 1.0;
  }
  if (share.size() > tenant_share_.size()) {
    tenant_share_.resize(share.size(), 0.0);
  }
  for (std::size_t t = 0; t < tenant_share_.size(); ++t) {
    const double s =
        depth > 0.0 && t < share.size() ? share[t] / depth : 0.0;
    tenant_share_[t] =
        policy_.ewma_alpha * s + (1.0 - policy_.ewma_alpha) * tenant_share_[t];
  }
  any_hot_ = std::any_of(tenant_share_.begin(), tenant_share_.end(),
                         [&](double s) { return s > policy_.hot_share; });

  // Gray-style hysteresis: sustain before moving, cooldown between
  // moves, separate re-arm thresholds for each direction.
  if (cooldown_ > 0) --cooldown_;
  if (score_ >= policy_.score_on) {
    ++sustain_up_;
    sustain_down_ = 0;
  } else if (score_ <= policy_.score_off) {
    ++sustain_down_;
    sustain_up_ = 0;
  } else {
    sustain_up_ = 0;
    sustain_down_ = 0;
  }
  if (cooldown_ == 0 && sustain_up_ >= policy_.sustain_evals &&
      tier_ < policy_.max_tier) {
    ++tier_;
    transitions_ += 1;
    v.changed = true;
    sustain_up_ = 0;
    cooldown_ = policy_.cooldown_evals;
  } else if (cooldown_ == 0 && sustain_down_ >= policy_.sustain_evals &&
             tier_ > 0) {
    --tier_;
    transitions_ += 1;
    v.changed = true;
    sustain_down_ = 0;
    cooldown_ = policy_.cooldown_evals;
  }
  peak_tier_ = std::max(peak_tier_, tier_);

  v.tier = tier_;
  v.score = score_;
  return v;
}

bool BrownoutController::hot(std::uint32_t tenant) const {
  return tenant < tenant_share_.size() &&
         tenant_share_[tenant] > policy_.hot_share;
}

int BrownoutController::effective_tier(std::uint32_t tenant) const {
  if (!policy_.enabled || tier_ == 0) return 0;
  // Fairness: when some tenant is hot, cold tenants get one tier of
  // shelter; under uniform overload everyone shares the pain equally.
  if (any_hot_ && !hot(tenant)) return tier_ - 1;
  return tier_;
}

}  // namespace sg::serve
