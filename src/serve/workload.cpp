#include "serve/workload.hpp"

#include <cmath>

namespace sg::serve {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) n = 1;
  std::vector<double> weight(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += weight[i];
  }
  // Vose's construction: scale every probability by n, then pair each
  // under-full column with an over-full donor so all n columns hold
  // exactly one unit. Worklists are filled in ascending index order
  // and drained LIFO — fully deterministic, no float-order ambiguity
  // beyond the IEEE arithmetic itself.
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = i;
  std::vector<double> scaled(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weight[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s_col = small.back();
    small.pop_back();
    const std::size_t l_col = large.back();
    large.pop_back();
    prob_[s_col] = scaled[s_col];
    alias_[s_col] = l_col;
    scaled[l_col] = (scaled[l_col] + scaled[s_col]) - 1.0;
    (scaled[l_col] < 1.0 ? small : large).push_back(l_col);
  }
  // Leftovers (either list) sit within rounding of 1: accept always.
  for (const std::size_t i : large) prob_[i] = 1.0;
  for (const std::size_t i : small) prob_[i] = 1.0;
}

std::size_t ZipfSampler::sample(sim::Rng& rng) const {
  // One uniform draw serves as both the column pick (integer part of
  // u*n) and the accept/alias coin (fractional part) — the standard
  // one-draw alias sampling discipline.
  const double u = rng.uniform() * static_cast<double>(prob_.size());
  std::size_t col = static_cast<std::size_t>(u);
  if (col >= prob_.size()) col = prob_.size() - 1;  // u == n edge
  const double frac = u - static_cast<double>(col);
  return frac < prob_[col] ? col : alias_[col];
}

std::vector<Query> generate_workload(const WorkloadSpec& spec,
                                     std::uint32_t num_vertices) {
  sim::Rng rng(spec.seed);

  // Landmark pool: the sources/seeds queries draw from (with
  // replacement allowed — duplicates just deepen the skew).
  std::vector<graph::VertexId> pool(spec.source_pool > 0 ? spec.source_pool
                                                         : 1);
  for (auto& v : pool) {
    v = static_cast<graph::VertexId>(rng.bounded(num_vertices));
  }

  const ZipfSampler tenant_dist(spec.num_tenants > 0 ? spec.num_tenants : 1,
                                spec.tenant_skew);
  const ZipfSampler source_dist(pool.size(), spec.source_skew);

  std::vector<Query> out;
  out.reserve(spec.num_queries);
  double clock_s = 0.0;
  for (std::uint32_t i = 0; i < spec.num_queries; ++i) {
    // Exponential inter-arrival (open-loop Poisson process).
    const double u = rng.uniform();
    clock_s += -std::log(1.0 - u) / spec.arrival_rate_qps;

    Query q;
    q.id = i;
    q.arrival = sim::SimTime{clock_s};
    q.tenant = static_cast<std::uint32_t>(tenant_dist.sample(rng));
    const double mix = rng.uniform();
    q.source = pool[source_dist.sample(rng)];
    if (mix < spec.bfs_frac) {
      q.kind = QueryKind::kBfsDist;
      q.target = static_cast<graph::VertexId>(rng.bounded(num_vertices));
    } else if (mix < spec.bfs_frac + spec.khop_frac) {
      q.kind = QueryKind::kKhopCount;
      q.k = rng.range(1, 3);
    } else if (mix < spec.bfs_frac + spec.khop_frac + spec.ppr_frac) {
      q.kind = QueryKind::kPprTopK;
      q.k = rng.range(5, 20);
    } else {
      q.kind = QueryKind::kSsspDist;
      q.target = static_cast<graph::VertexId>(rng.bounded(num_vertices));
    }
    q.priority = static_cast<std::uint32_t>(
        rng.bounded(spec.priorities > 0 ? spec.priorities : 1));
    const double slack_ms =
        spec.deadline_slack_lo_ms +
        rng.uniform() * (spec.deadline_slack_hi_ms - spec.deadline_slack_lo_ms);
    q.deadline = q.arrival + sim::SimTime::millisec(slack_ms);
    out.push_back(q);
  }
  return out;
}

}  // namespace sg::serve
