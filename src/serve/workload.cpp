#include "serve/workload.hpp"

#include <cmath>
#include <cstddef>

#include "sim/rng.hpp"

namespace sg::serve {

namespace {

/// Deterministic Zipf sampler over [0, n): cumulative weights
/// w_i = 1 / (i+1)^s inverted by a uniform draw.
class Zipf {
 public:
  Zipf(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(total);
    }
  }

  [[nodiscard]] std::size_t sample(sim::Rng& rng) const {
    if (cdf_.empty()) return 0;
    const double u = rng.uniform() * cdf_.back();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::vector<Query> generate_workload(const WorkloadSpec& spec,
                                     std::uint32_t num_vertices) {
  sim::Rng rng(spec.seed);

  // Landmark pool: the sources/seeds queries draw from (with
  // replacement allowed — duplicates just deepen the skew).
  std::vector<graph::VertexId> pool(spec.source_pool > 0 ? spec.source_pool
                                                         : 1);
  for (auto& v : pool) {
    v = static_cast<graph::VertexId>(rng.bounded(num_vertices));
  }

  const Zipf tenant_dist(spec.num_tenants > 0 ? spec.num_tenants : 1,
                         spec.tenant_skew);
  const Zipf source_dist(pool.size(), spec.source_skew);

  std::vector<Query> out;
  out.reserve(spec.num_queries);
  double clock_s = 0.0;
  for (std::uint32_t i = 0; i < spec.num_queries; ++i) {
    // Exponential inter-arrival (open-loop Poisson process).
    const double u = rng.uniform();
    clock_s += -std::log(1.0 - u) / spec.arrival_rate_qps;

    Query q;
    q.id = i;
    q.arrival = sim::SimTime{clock_s};
    q.tenant = static_cast<std::uint32_t>(tenant_dist.sample(rng));
    const double mix = rng.uniform();
    q.source = pool[source_dist.sample(rng)];
    if (mix < spec.bfs_frac) {
      q.kind = QueryKind::kBfsDist;
      q.target = static_cast<graph::VertexId>(rng.bounded(num_vertices));
    } else if (mix < spec.bfs_frac + spec.khop_frac) {
      q.kind = QueryKind::kKhopCount;
      q.k = rng.range(1, 3);
    } else if (mix < spec.bfs_frac + spec.khop_frac + spec.ppr_frac) {
      q.kind = QueryKind::kPprTopK;
      q.k = rng.range(5, 20);
    } else {
      q.kind = QueryKind::kSsspDist;
      q.target = static_cast<graph::VertexId>(rng.bounded(num_vertices));
    }
    q.priority = static_cast<std::uint32_t>(
        rng.bounded(spec.priorities > 0 ? spec.priorities : 1));
    const double slack_ms =
        spec.deadline_slack_lo_ms +
        rng.uniform() * (spec.deadline_slack_hi_ms - spec.deadline_slack_lo_ms);
    q.deadline = q.arrival + sim::SimTime::millisec(slack_ms);
    out.push_back(q);
  }
  return out;
}

}  // namespace sg::serve
