#include "serve/query.hpp"

#include "obs/json.hpp"

namespace sg::serve {

std::string Answer::payload() const {
  std::string out = to_string(kind);
  out += ':';
  if (!served) {
    out += "rejected:";
    out += to_string(reject_reason);
    out += ':';
    out += reject_detail;
    return out;
  }
  switch (kind) {
    case QueryKind::kBfsDist:
    case QueryKind::kSsspDist:
      out += distance == kUnreachable ? "inf" : std::to_string(distance);
      break;
    case QueryKind::kKhopCount:
      out += std::to_string(khop_count);
      out += ':';
      out += std::to_string(khop_digest);
      break;
    case QueryKind::kPprTopK:
      for (const ScoredVertex& sv : topk) {
        out += std::to_string(sv.vertex);
        out += '=';
        out += obs::format_double(sv.score);
        out += ';';
      }
      break;
  }
  return out;
}

}  // namespace sg::serve
