#pragma once

#include <cstdint>

#include "sim/sim_time.hpp"

namespace sg::serve {

/// Fault-tolerant query lifecycle knobs: per-query deadline timeouts,
/// bounded retry-with-backoff for failed engine runs, and hedged
/// re-dispatch of straggling batches. Disabled by default — the
/// default dispatch path is bit-identical with the policy compiled in.
struct LifecyclePolicy {
  bool enabled = false;
  /// Expire queued queries whose absolute deadline has already passed
  /// at a dispatch boundary (explicit kDeadlineInfeasible rejection
  /// instead of a lane wasted on an answer nobody can use), and arm
  /// the admission-time feasibility gate once the batch-time estimate
  /// has warmed up.
  bool timeout_queries = true;
  /// Engine-run retry budget. Attempt 0 uses the primary engine
  /// config; later attempts re-dispatch the affected lanes against a
  /// fault-free twin config — the serving-layer model of re-executing
  /// on replicas that did not lose a device. Each retry charges
  /// retry_backoff_ms * 2^attempt of simulated time.
  std::uint32_t max_retries = 2;
  double retry_backoff_ms = 0.5;
  /// Hedged re-dispatch: when a batch runs longer than hedge_factor
  /// times the smoothed batch-time estimate, a duplicate is modeled as
  /// launched on the fault-free twin at the straggle-detection instant
  /// and the earlier finish wins. Results are identical either way
  /// (the twin computes the same labels); only completion time moves.
  bool hedge = true;
  double hedge_factor = 4.0;
  /// EWMA smoothing for the batch-time estimate feeding timeouts,
  /// hedging, and the brownout deadline signal.
  double ewma_alpha = 0.3;
  /// Test hook: the first `fail_attempts` engine attempts of this
  /// scheduler throw before running, exercising the retry path without
  /// a fault plan. Production configs leave it 0.
  std::uint32_t fail_attempts = 0;
};

/// Lifecycle accounting folded into the serve report (nonzero-gated in
/// the JSON, so an idle or lifecycle-off run emits nothing new).
struct LifecycleStats {
  std::uint64_t timeouts = 0;        ///< queued queries expired
  std::uint64_t infeasible = 0;      ///< rejected at admission by the gate
  std::uint64_t retries = 0;         ///< engine attempts re-dispatched
  std::uint64_t engine_failures = 0; ///< batches that exhausted retries
  std::uint64_t hedges = 0;          ///< duplicates launched
  std::uint64_t hedge_wins = 0;      ///< duplicates that finished first

  [[nodiscard]] bool any() const {
    return timeouts + infeasible + retries + engine_failures + hedges > 0;
  }
};

/// Deterministic smoothed estimate of fused-batch service time. Cold
/// (zero samples) reads as zero, which every consumer treats as "gate
/// disarmed" — the first batch can never time out against a guess.
class BatchTimeEstimate {
 public:
  explicit BatchTimeEstimate(double alpha = 0.3) : alpha_(alpha) {}

  void observe(sim::SimTime t) {
    if (samples_ == 0) {
      est_ = t;
    } else {
      est_ = sim::SimTime{alpha_ * t.seconds() +
                          (1.0 - alpha_) * est_.seconds()};
    }
    ++samples_;
  }

  /// Zero until at least two samples landed (one sample is not a
  /// trend; gating on two keeps the first re-dispatch decision honest).
  [[nodiscard]] sim::SimTime value() const {
    return samples_ >= 2 ? est_ : sim::SimTime::zero();
  }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  double alpha_;
  sim::SimTime est_;
  std::uint64_t samples_ = 0;
};

}  // namespace sg::serve
