#include "serve/reshard.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sg::serve {

std::vector<char> seal_blob(const std::vector<char>& payload) {
  std::vector<char> out;
  out.reserve(4 + 4 + 8 + payload.size() + 8);
  out.insert(out.end(), kReshardMagic.begin(), kReshardMagic.end());
  const std::uint32_t version = kReshardBlobVersion;
  const auto append_pod = [&](const auto& v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    out.insert(out.end(), p, p + sizeof v);
  };
  append_pod(version);
  append_pod(static_cast<std::uint64_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  append_pod(partition::fnv1a64(payload.data(), payload.size()));
  return out;
}

std::vector<char> open_blob(const std::vector<char>& blob,
                            const std::string& context) {
  constexpr std::size_t kHeader = 4 + 4 + 8;
  constexpr std::size_t kTrailer = 8;
  if (blob.size() < kHeader + kTrailer) {
    throw std::runtime_error(context + ": migration blob truncated (" +
                             std::to_string(blob.size()) + " bytes)");
  }
  if (!std::equal(kReshardMagic.begin(), kReshardMagic.end(), blob.begin())) {
    throw std::runtime_error(context + ": bad magic in migration blob");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, blob.data() + 4, sizeof version);
  if (version != kReshardBlobVersion) {
    throw std::runtime_error(context + ": unsupported migration blob version " +
                             std::to_string(version));
  }
  std::uint64_t size = 0;
  std::memcpy(&size, blob.data() + 8, sizeof size);
  if (size != blob.size() - kHeader - kTrailer) {
    throw std::runtime_error(context + ": migration blob length field " +
                             std::to_string(size) + " does not match " +
                             std::to_string(blob.size() - kHeader - kTrailer) +
                             " payload bytes (corrupt?)");
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + blob.size() - kTrailer, sizeof stored);
  const std::uint64_t sum =
      partition::fnv1a64(blob.data() + kHeader, static_cast<std::size_t>(size));
  if (sum != stored) {
    throw std::runtime_error(context + ": migration blob checksum mismatch (" +
                             partition::digest_hex(stored) + " stored, " +
                             partition::digest_hex(sum) + " recomputed)");
  }
  return {blob.begin() + static_cast<std::ptrdiff_t>(kHeader),
          blob.end() - static_cast<std::ptrdiff_t>(kTrailer)};
}

void ReshardManager::ensure_tenant(std::uint32_t tenant) {
  while (home_.size() <= tenant) {
    home_.push_back(static_cast<std::uint32_t>(home_.size()) %
                    policy_.num_homes);
  }
  if (load_.size() <= tenant) load_.resize(tenant + 1, 0.0);
  if (window_.size() <= tenant) window_.resize(tenant + 1, 0.0);
}

void ReshardManager::note_served(std::uint32_t tenant, double queries) {
  if (!policy_.enabled) return;
  ensure_tenant(tenant);
  window_[tenant] += queries;
}

std::optional<ReshardManager::Move> ReshardManager::evaluate() {
  if (!policy_.enabled || home_.empty()) return std::nullopt;

  for (std::size_t t = 0; t < load_.size(); ++t) {
    load_[t] = policy_.ewma_alpha * window_[t] +
               (1.0 - policy_.ewma_alpha) * load_[t];
    window_[t] = 0.0;
  }

  std::vector<double> home_load(policy_.num_homes, 0.0);
  double total = 0.0;
  for (std::size_t t = 0; t < load_.size(); ++t) {
    home_load[home_[t]] += load_[t];
    total += load_[t];
  }
  const double mean = total / static_cast<double>(policy_.num_homes);
  std::uint32_t hottest = 0;
  std::uint32_t coldest = 0;
  for (std::uint32_t h = 1; h < policy_.num_homes; ++h) {
    if (home_load[h] > home_load[hottest]) hottest = h;
    if (home_load[h] < home_load[coldest]) coldest = h;
  }
  imbalance_ = mean > 0.0 ? home_load[hottest] / mean : 0.0;

  if (cooldown_ > 0) --cooldown_;
  if (imbalance_ >= policy_.imbalance_on) {
    ++sustain_;
  } else if (imbalance_ <= policy_.imbalance_off) {
    sustain_ = 0;
  }
  if (sustain_ < policy_.sustain_evals || cooldown_ > 0) return std::nullopt;
  if (policy_.max_migrations != 0 && migrations_ >= policy_.max_migrations) {
    return std::nullopt;
  }

  // Hottest *improvable* tenant on the hottest home: moving it must
  // strictly lower the source home's load below its current peak and
  // not just relocate the hotspot. Ties break on the lowest tenant id.
  std::int64_t best = -1;
  for (std::size_t t = 0; t < load_.size(); ++t) {
    if (home_[t] != hottest || load_[t] <= 0.0) continue;
    if (home_load[coldest] + load_[t] >= home_load[hottest]) continue;
    if (best < 0 || load_[t] > load_[static_cast<std::size_t>(best)]) {
      best = static_cast<std::int64_t>(t);
    }
  }
  if (best < 0) return std::nullopt;
  Move m;
  m.tenant = static_cast<std::uint32_t>(best);
  m.from = hottest;
  m.to = coldest;
  m.imbalance = imbalance_;
  return m;
}

void ReshardManager::apply(const Move& m) {
  ensure_tenant(m.tenant);
  home_[m.tenant] = m.to;
  ++migrations_;
  sustain_ = 0;
  cooldown_ = policy_.cooldown_evals;
}

}  // namespace sg::serve
