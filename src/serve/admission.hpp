#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "serve/query.hpp"
#include "sim/sim_time.hpp"

namespace sg::serve {

/// Per-tenant admission limits.
struct TenantLimits {
  double rate_qps = 200.0;  ///< token refill rate (queries / sim-second)
  double burst = 32.0;      ///< bucket capacity
  std::uint32_t max_queued = 256;  ///< per-tenant share of the queue
};

/// Deterministic token bucket on the simulated clock: refills
/// continuously at `rate_qps`, capped at `burst`; each admitted query
/// spends one token. Arrivals are evaluated at their arrival timestamp
/// (not the scheduler's processing instant), so admission verdicts are
/// independent of batching and replay order.
class TokenBucket {
 public:
  TokenBucket(double rate_qps, double burst)
      : rate_(rate_qps), burst_(burst), tokens_(burst) {}

  [[nodiscard]] double peek(sim::SimTime now) const {
    const double dt = (now - last_).seconds();
    const double refilled = tokens_ + (dt > 0.0 ? dt * rate_ : 0.0);
    return refilled < burst_ ? refilled : burst_;
  }

  bool try_take(sim::SimTime now) {
    const double available = peek(now);
    if (now > last_) last_ = now;
    if (available >= 1.0) {
      tokens_ = available - 1.0;
      return true;
    }
    tokens_ = available;
    return false;
  }

  /// Full accounting state, trivially copyable so the reshard layer can
  /// archive it through the checksummed blob substrate and restore it
  /// bit-exactly on the destination home.
  struct State {
    double rate = 0.0;
    double burst = 0.0;
    double tokens = 0.0;
    double last_s = 0.0;
  };
  static_assert(std::is_trivially_copyable_v<State>);

  [[nodiscard]] State state() const {
    return {rate_, burst_, tokens_, last_.seconds()};
  }
  void restore(const State& s) {
    rate_ = s.rate;
    burst_ = s.burst;
    tokens_ = s.tokens;
    last_ = sim::SimTime{s.last_s};
  }

 private:
  double rate_;
  double burst_;
  double tokens_;
  sim::SimTime last_;
};

/// Verdict for one query at its arrival instant.
struct AdmissionDecision {
  bool admitted = true;
  RejectReason reason = RejectReason::kNone;
  std::string detail;  ///< descriptive rejection for the Answer
};

/// Per-tenant token buckets plus queue-occupancy bounds. Owns no queue:
/// the scheduler reports its current depths and the controller renders
/// the verdict.
class AdmissionController {
 public:
  AdmissionController(TenantLimits default_limits,
                      std::vector<TenantLimits> per_tenant,
                      std::uint32_t max_queue_depth);

  /// `queue_depth` / `tenant_depth` are the pending counts at the
  /// decision instant. A positive `est_service` arms the deadline
  /// feasibility gate: a query whose absolute deadline precedes
  /// arrival + est_service can never be served in time and is rejected
  /// up front (kDeadlineInfeasible) instead of wasting a queue slot.
  [[nodiscard]] AdmissionDecision admit(
      const Query& q, std::uint32_t queue_depth, std::uint32_t tenant_depth,
      sim::SimTime est_service = sim::SimTime::zero());

  [[nodiscard]] const TenantLimits& limits(std::uint32_t tenant) const;

  /// Reshard support: token-bucket accounting travels with the tenant.
  /// export_bucket materializes the bucket (creating it at its limits
  /// if the tenant was never seen) so the serialized state is always
  /// well-defined; import_bucket restores it bit-exactly.
  [[nodiscard]] TokenBucket::State export_bucket(std::uint32_t tenant) {
    return bucket(tenant).state();
  }
  void import_bucket(std::uint32_t tenant, const TokenBucket::State& s) {
    bucket(tenant).restore(s);
  }

 private:
  TokenBucket& bucket(std::uint32_t tenant);

  TenantLimits default_limits_;
  std::vector<TenantLimits> per_tenant_;
  std::uint32_t max_queue_depth_;
  std::vector<TokenBucket> buckets_;  ///< grown on first sight of a tenant
};

}  // namespace sg::serve
