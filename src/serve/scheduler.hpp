#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/sync_structure.hpp"
#include "engine/config.hpp"
#include "engine/stats.hpp"
#include "obs/metrics.hpp"
#include "partition/dist_graph.hpp"
#include "serve/admission.hpp"
#include "serve/brownout.hpp"
#include "serve/cache.hpp"
#include "serve/lifecycle.hpp"
#include "serve/query.hpp"
#include "serve/reshard.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

namespace sg::serve {

/// Serving-report schema version (bumped on any report_json() layout
/// change). v2 added the rejection-reason breakdown, per-priority
/// deadline accounting, and the nonzero-gated brownout / reshard /
/// lifecycle sections.
inline constexpr int kServeReportVersion = 2;

/// Knobs for one BatchScheduler instance.
struct ServeConfig {
  /// Max msbfs lanes per fused run (<= MsBfsProgram::kMaxSources).
  std::uint32_t batch_width = 64;
  /// Max batched-PPR lanes per fused run (<= algo::kPprBatchLanes).
  std::uint32_t ppr_batch_width = 16;
  std::uint32_t max_queue_depth = 512;
  TenantLimits default_limits;
  /// Per-tenant overrides by tenant id; tenants past the end use
  /// `default_limits`.
  std::vector<TenantLimits> tenant_limits;
  /// bfs and sssp distance rows share this budget; size it for the
  /// expected landmark working set of BOTH families or the cold phase
  /// thrashes (a 2048-vertex sssp row is 16 KiB — still cheap). With
  /// resharding enabled the budget is split evenly across shard homes.
  std::uint32_t dist_cache_capacity = 512;
  std::uint32_t ppr_cache_capacity = 256;
  /// Shared PPR parameters — queries only carry (seed, k), so every
  /// ppr-topk query in a scheduler is batch-compatible by construction.
  double ppr_alpha = 0.15;
  double ppr_eps = 1e-6;
  /// Current graph epoch; cache keys carry it, bump_epoch() strands old
  /// entries.
  std::uint64_t graph_epoch = 0;
  /// Keep a BatchRecord per engine run (sg_serve --verify replays them).
  bool record_batches = false;
  /// Overload robustness layer (DESIGN.md §16). Every policy defaults
  /// to disabled and the armed-but-idle machinery is nonzero-gated, so
  /// the default dispatch path and its report stay byte-identical.
  BrownoutPolicy brownout;
  ReshardPolicy reshard;
  LifecyclePolicy lifecycle;
  /// SLO metrics sink. Metrics are registered lazily at event time
  /// only, so a scheduler that never serves a query registers nothing
  /// (batch-mode run reports stay byte-identical; same nonzero-gating
  /// discipline as the fault/integrity layers).
  obs::Registry* metrics = nullptr;
};

/// Per-tenant serving outcome.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;  ///< served via brownout approximation
  std::uint64_t deadline_met = 0;
  std::array<std::uint64_t, kRejectReasonCount> rejected_by_reason{};
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

/// Per-priority-class serving outcome (index = priority, 0 most
/// urgent) — the brownout SLO margin is judged on class 0.
struct PriorityStats {
  std::uint64_t served = 0;
  std::uint64_t deadline_met = 0;
};

/// Aggregate serving outcome across every run() call.
struct ServeReport {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  /// Every query that did not get a full or degraded answer: admission
  /// rejections plus post-admission lifecycle expiries, brownout
  /// shedding, and retry-exhausted batches. Zero silent drops: every
  /// submitted query is exactly one of served or rejected-with-reason.
  std::uint64_t rejected = 0;
  std::array<std::uint64_t, kRejectReasonCount> rejected_by_reason{};
  std::uint64_t served = 0;
  std::uint64_t served_from_cache = 0;
  std::uint64_t degraded_served = 0;  ///< tagged degraded:true
  std::uint64_t engine_runs = 0;
  /// Sum of global rounds across engine runs — the "sweeps" the
  /// batching is meant to compress (>= 8x fewer than unbatched at
  /// width 64 is CI-asserted).
  std::uint64_t engine_sweeps = 0;
  std::uint64_t lanes_total = 0;  ///< engine lanes occupied, summed over runs
  std::uint32_t max_queue_depth_seen = 0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double deadline_hit_ratio = 0.0;  ///< met deadlines / served
  sim::SimTime makespan;            ///< clock when the last answer left
  std::vector<TenantStats> tenants;
  std::vector<PriorityStats> by_priority;
  /// Brownout controller outcome.
  std::uint64_t brownout_transitions = 0;
  int brownout_peak_tier = 0;
  /// Elastic resharding outcome.
  std::uint64_t reshard_migrations = 0;
  std::uint64_t reshard_bytes = 0;
  /// Query-lifecycle outcome (timeouts / retries / hedges).
  LifecycleStats lifecycle;
};

/// One fused engine run, for offline verification.
struct BatchRecord {
  QueryKind klass = QueryKind::kBfsDist;
  std::vector<graph::VertexId> lane_sources;  ///< one per engine lane
  std::vector<std::uint64_t> query_ids;       ///< queries it answered
  std::uint32_t rounds = 0;
  sim::SimTime start;
  sim::SimTime finish;
};

/// Multi-tenant batched point-query scheduler over a resident
/// partitioned graph.
///
/// run() replays an arrival-ordered query trace on the simulated
/// clock: each query is admitted at its arrival instant (token bucket
/// + queue bounds), answered from the result cache when possible, and
/// otherwise queued. The drain loop repeatedly takes the
/// (priority, deadline, id)-least pending query and coalesces every
/// compatible queued query into one fused engine run:
///
///  * bfs-dist + khop queries share msbfs lanes (up to batch_width
///    distinct sources per run; every query on a chosen source rides
///    along);
///  * ppr-topk queries share ppr-batch lanes (up to ppr_batch_width
///    distinct seeds);
///  * sssp-dist queries share mssssp lanes (up to batch_width distinct
///    sources; weighted min relaxation batches exactly like hops).
///
/// Batch completion advances the clock by the run's simulated time;
/// per-lane result arrays feed the landmark/PPR caches so repeat
/// sources are served without the engine.
///
/// Three optional robustness layers hook the dispatch boundary
/// (DESIGN.md §16), all deterministic and default-off:
///
///  * brownout — a hysteretic overload controller sheds load in
///    descending tiers (full answers -> cache/landmark answers tagged
///    degraded -> priority-weighted rejection) with per-tenant
///    fairness;
///  * reshard — per-tenant load EWMAs drive migration of serving state
///    (cache slice + token-bucket accounting) across shard homes
///    through a checksummed blob, bit-exact by construction;
///  * lifecycle — queued queries past their deadline expire explicitly,
///    failed engine runs retry with backoff against a fault-free twin,
///    and straggling batches hedge a duplicate dispatch.
///
/// Everything is deterministic: same trace, same graph, same config =>
/// byte-identical report_json().
class BatchScheduler {
 public:
  BatchScheduler(const partition::DistGraph& dg,
                 const comm::SyncStructure& sync, const sim::Topology& topo,
                 const sim::CostParams& params,
                 const engine::EngineConfig& engine_cfg, ServeConfig cfg);

  /// Serves `queries` (sorted by arrival; ties broken by id). The
  /// returned answers are in input order. May be called repeatedly;
  /// the simulated clock, cache, and report carry over.
  [[nodiscard]] std::vector<Answer> run(std::span<const Query> queries);

  /// Marks a graph mutation: strands every cached entry from older
  /// epochs (counted as invalidations).
  void bump_epoch();

  [[nodiscard]] const ServeReport& report() const { return report_; }
  /// Cache outcome aggregated across shard homes (one home unless
  /// resharding is enabled).
  [[nodiscard]] ResultCache::Stats cache_stats() const;
  [[nodiscard]] const std::vector<BatchRecord>& batches() const {
    return batches_;
  }
  /// Raw engine stats per fused run (bench aggregation).
  [[nodiscard]] const std::vector<engine::RunStats>& engine_stats() const {
    return engine_stats_;
  }
  [[nodiscard]] std::uint64_t graph_epoch() const { return cfg_.graph_epoch; }
  [[nodiscard]] const BrownoutController& brownout() const {
    return brownout_;
  }
  [[nodiscard]] const ReshardManager& resharder() const { return reshard_; }
  /// The shard-home cache `tenant`'s queries are served from.
  [[nodiscard]] const ResultCache& cache_of(std::uint32_t tenant) const;

  /// Schema-versioned, byte-deterministic JSON serving report. Passing
  /// a non-negative `host_wall_ms` appends a `"nondeterministic":true`
  /// `host` section (measured wall time + queries/sec); the default
  /// keeps the report byte-identical to earlier versions.
  [[nodiscard]] std::string report_json(double host_wall_ms = -1.0) const;

 private:
  struct Pending {
    Query q;
    std::size_t out_index = 0;  ///< slot in the current run()'s answers
  };

  void admit_until(sim::SimTime now, std::span<const Query> queries,
                   std::size_t& next, std::vector<Answer>& answers);
  void dispatch_batch(std::vector<Answer>& answers);
  /// Answers `p` from its home cache; false when the entry is absent.
  bool try_serve_from_cache(const Pending& p, Answer& a);
  /// Brownout tier >= 1 approximation: landmark triangle bound for s-t
  /// queries. False when no cached landmark covers both endpoints.
  bool try_serve_degraded(const Pending& p, Answer& a);
  void finish_answer(const Pending& p, Answer& a, sim::SimTime completed,
                     bool from_cache);
  /// Post-admission rejection (expiry / shed / engine failure): the
  /// query was admitted but never served; counted into the rejection
  /// breakdown so no query is ever silently dropped.
  void reject_answer(const Pending& p, Answer& a, RejectReason reason,
                     std::string detail);
  void note_rejection(std::uint32_t tenant, std::uint64_t id,
                      RejectReason reason);
  void answer_from_dist(const Query& q, std::span<const std::uint32_t> dist,
                        Answer& a) const;
  /// Applies lifecycle expiry and brownout shedding/degrading to the
  /// sorted queue at a dispatch boundary; removed entries are answered
  /// or rejected in place.
  void apply_overload_controls(std::vector<Answer>& answers);
  /// Executes at most one serving-state migration at this safe batch
  /// boundary (charging the simulated transfer time).
  void maybe_reshard();

  [[nodiscard]] ResultCache& cache_for(std::uint32_t tenant);
  [[nodiscard]] std::uint32_t home_for(std::uint32_t tenant) const;
  /// Fault-free twin config retries and hedges re-dispatch against.
  [[nodiscard]] engine::EngineConfig fallback_cfg() const;

  void note_queue_depth();
  [[nodiscard]] obs::Counter* counter(const std::string& name);
  /// Flight recorder serve events land in (the engine config's, else
  /// the process-wide one — same fallback the executor uses).
  [[nodiscard]] obs::FlightRecorder& flight() const;

  const partition::DistGraph& dg_;
  const comm::SyncStructure& sync_;
  const sim::Topology& topo_;
  const sim::CostParams& params_;
  engine::EngineConfig engine_cfg_;
  ServeConfig cfg_;

  AdmissionController admission_;
  std::vector<ResultCache> caches_;  ///< one per shard home
  BrownoutController brownout_;
  ReshardManager reshard_;
  BatchTimeEstimate batch_est_;
  std::uint64_t engine_attempts_ = 0;  ///< lifetime attempts (fail hook)
  sim::SimTime clock_;
  std::vector<Pending> queue_;
  std::vector<std::uint32_t> tenant_depth_;  ///< queued per tenant

  ServeReport report_;
  std::vector<double> latencies_us_;  ///< all served, for percentiles
  std::vector<std::vector<double>> tenant_latencies_us_;
  std::vector<BatchRecord> batches_;
  std::vector<engine::RunStats> engine_stats_;
};

}  // namespace sg::serve
