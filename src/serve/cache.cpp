#include "serve/cache.hpp"

#include <bit>
#include <limits>

namespace sg::serve {

namespace {
/// Unreachable sentinel inside bfs rows (algo::kInfDist's value; kept
/// literal here so the cache stays below the algo layer).
inline constexpr std::uint32_t kInfHop =
    std::numeric_limits<std::uint32_t>::max();
}  // namespace

// The two distance compartments share `dist_capacity_`; the PPR memo
// has its own budget.
template <typename Map>
void ResultCache::evict_lru(Map& map, std::size_t other_size,
                            std::uint32_t capacity) {
  while (map.size() + other_size > capacity && !map.empty()) {
    auto victim = map.begin();
    for (auto it = std::next(map.begin()); it != map.end(); ++it) {
      if (it->second.tick < victim->second.tick) victim = it;
    }
    map.erase(victim);
    ++stats_.evictions;
  }
}

const std::vector<std::uint32_t>* ResultCache::find_bfs(
    graph::VertexId source, std::uint64_t epoch) {
  const auto it = bfs_.find({source, epoch});
  if (it == bfs_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return &it->second.value;
}

const std::vector<std::uint64_t>* ResultCache::find_sssp(
    graph::VertexId source, std::uint64_t epoch) {
  const auto it = sssp_.find({source, epoch});
  if (it == sssp_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return &it->second.value;
}

const std::vector<ScoredVertex>* ResultCache::find_ppr(graph::VertexId seed,
                                                       double alpha,
                                                       double eps,
                                                       std::uint64_t epoch) {
  const PprKey key{seed, std::bit_cast<std::uint64_t>(alpha),
                   std::bit_cast<std::uint64_t>(eps), epoch};
  const auto it = ppr_.find(key);
  if (it == ppr_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return &it->second.value;
}

void ResultCache::put_bfs(graph::VertexId source, std::uint64_t epoch,
                          std::vector<std::uint32_t> dist,
                          std::uint32_t owner) {
  auto& e = bfs_[{source, epoch}];
  e.value = std::move(dist);
  e.epoch = epoch;
  e.tick = ++tick_;
  e.owner = owner;
  ++stats_.insertions;
  evict_lru(bfs_, sssp_.size(), dist_capacity_);
}

void ResultCache::put_sssp(graph::VertexId source, std::uint64_t epoch,
                           std::vector<std::uint64_t> dist,
                           std::uint32_t owner) {
  auto& e = sssp_[{source, epoch}];
  e.value = std::move(dist);
  e.epoch = epoch;
  e.tick = ++tick_;
  e.owner = owner;
  ++stats_.insertions;
  evict_lru(sssp_, bfs_.size(), dist_capacity_);
}

void ResultCache::put_ppr(graph::VertexId seed, double alpha, double eps,
                          std::uint64_t epoch,
                          std::vector<ScoredVertex> ranked,
                          std::uint32_t owner) {
  const PprKey key{seed, std::bit_cast<std::uint64_t>(alpha),
                   std::bit_cast<std::uint64_t>(eps), epoch};
  auto& e = ppr_[key];
  e.value = std::move(ranked);
  e.epoch = epoch;
  e.tick = ++tick_;
  e.owner = owner;
  ++stats_.insertions;
  evict_lru(ppr_, 0, ppr_capacity_);
}

std::uint64_t ResultCache::hop_bound(graph::VertexId s, graph::VertexId t,
                                     std::uint64_t epoch) const {
  std::uint64_t best = kUnreachable;
  for (const auto& [key, e] : bfs_) {
    if (key.second != epoch) continue;
    const auto& row = e.value;
    if (s >= row.size() || t >= row.size()) continue;
    if (row[s] == kInfHop || row[t] == kInfHop) continue;
    const std::uint64_t ub =
        static_cast<std::uint64_t>(row[s]) + static_cast<std::uint64_t>(row[t]);
    if (ub < best) best = ub;
  }
  return best;
}

std::uint64_t ResultCache::sssp_bound(graph::VertexId s, graph::VertexId t,
                                      std::uint64_t epoch) const {
  std::uint64_t best = kUnreachable;
  for (const auto& [key, e] : sssp_) {
    if (key.second != epoch) continue;
    const auto& row = e.value;
    if (s >= row.size() || t >= row.size()) continue;
    if (row[s] == kUnreachable || row[t] == kUnreachable) continue;
    const std::uint64_t ub = row[s] + row[t];
    if (ub < best) best = ub;
  }
  return best;
}

void ResultCache::invalidate_stale(std::uint64_t current_epoch) {
  const auto sweep = [&](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      if (it->second.epoch != current_epoch) {
        it = map.erase(it);
        ++stats_.invalidations;
      } else {
        ++it;
      }
    }
  };
  sweep(bfs_);
  sweep(sssp_);
  sweep(ppr_);
}

std::size_t ResultCache::owned_entries(std::uint32_t owner) const {
  std::size_t n = 0;
  const auto count = [&](const auto& map) {
    for (const auto& [key, e] : map) {
      if (e.owner == owner) ++n;
    }
  };
  count(bfs_);
  count(sssp_);
  count(ppr_);
  return n;
}

void ResultCache::extract_tenant(std::uint32_t owner,
                                 partition::ByteWriter& w) {
  // One compartment at a time: count, then (key fields, row) per entry
  // in std::map key order — deterministic on every platform.
  const auto archive_dist = [&](auto& map) {
    std::uint64_t n = 0;
    for (const auto& [key, e] : map) {
      if (e.owner == owner) ++n;
    }
    w(n);
    for (auto it = map.begin(); it != map.end();) {
      if (it->second.owner != owner) {
        ++it;
        continue;
      }
      w(it->first.first, it->first.second, it->second.value);
      it = map.erase(it);
    }
  };
  w(owner);
  archive_dist(bfs_);
  archive_dist(sssp_);
  std::uint64_t n_ppr = 0;
  for (const auto& [key, e] : ppr_) {
    if (e.owner == owner) ++n_ppr;
  }
  w(n_ppr);
  for (auto it = ppr_.begin(); it != ppr_.end();) {
    if (it->second.owner != owner) {
      ++it;
      continue;
    }
    w(it->first.seed, it->first.alpha_bits, it->first.eps_bits,
      it->first.epoch, it->second.value);
    it = ppr_.erase(it);
  }
}

void ResultCache::absorb(partition::ByteReader& r) {
  std::uint32_t owner = 0;
  r(owner);
  const auto take_bfs = [&] {
    std::uint64_t n = 0;
    r(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      graph::VertexId source = 0;
      std::uint64_t epoch = 0;
      std::vector<std::uint32_t> row;
      r(source, epoch, row);
      auto& e = bfs_[{source, epoch}];
      e.value = std::move(row);
      e.epoch = epoch;
      e.tick = ++tick_;
      e.owner = owner;
    }
  };
  const auto take_sssp = [&] {
    std::uint64_t n = 0;
    r(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      graph::VertexId source = 0;
      std::uint64_t epoch = 0;
      std::vector<std::uint64_t> row;
      r(source, epoch, row);
      auto& e = sssp_[{source, epoch}];
      e.value = std::move(row);
      e.epoch = epoch;
      e.tick = ++tick_;
      e.owner = owner;
    }
  };
  take_bfs();
  take_sssp();
  std::uint64_t n_ppr = 0;
  r(n_ppr);
  for (std::uint64_t i = 0; i < n_ppr; ++i) {
    PprKey key;
    std::vector<ScoredVertex> ranked;
    r(key.seed, key.alpha_bits, key.eps_bits, key.epoch, ranked);
    auto& e = ppr_[key];
    e.value = std::move(ranked);
    e.epoch = key.epoch;
    e.tick = ++tick_;
    e.owner = owner;
  }
  // Migrated entries honor this cache's budget, not the source's.
  evict_lru(bfs_, sssp_.size(), dist_capacity_);
  evict_lru(sssp_, bfs_.size(), dist_capacity_);
  evict_lru(ppr_, 0, ppr_capacity_);
}

}  // namespace sg::serve
