#include "serve/cache.hpp"

#include <bit>

namespace sg::serve {

// The two distance compartments share `dist_capacity_`; the PPR memo
// has its own budget.
template <typename Map>
void ResultCache::evict_lru(Map& map, std::size_t other_size,
                            std::uint32_t capacity) {
  while (map.size() + other_size > capacity && !map.empty()) {
    auto victim = map.begin();
    for (auto it = std::next(map.begin()); it != map.end(); ++it) {
      if (it->second.tick < victim->second.tick) victim = it;
    }
    map.erase(victim);
    ++stats_.evictions;
  }
}

const std::vector<std::uint32_t>* ResultCache::find_bfs(
    graph::VertexId source, std::uint64_t epoch) {
  const auto it = bfs_.find({source, epoch});
  if (it == bfs_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return &it->second.value;
}

const std::vector<std::uint64_t>* ResultCache::find_sssp(
    graph::VertexId source, std::uint64_t epoch) {
  const auto it = sssp_.find({source, epoch});
  if (it == sssp_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return &it->second.value;
}

const std::vector<ScoredVertex>* ResultCache::find_ppr(graph::VertexId seed,
                                                       double alpha,
                                                       double eps,
                                                       std::uint64_t epoch) {
  const PprKey key{seed, std::bit_cast<std::uint64_t>(alpha),
                   std::bit_cast<std::uint64_t>(eps), epoch};
  const auto it = ppr_.find(key);
  if (it == ppr_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return &it->second.value;
}

void ResultCache::put_bfs(graph::VertexId source, std::uint64_t epoch,
                          std::vector<std::uint32_t> dist) {
  auto& e = bfs_[{source, epoch}];
  e.value = std::move(dist);
  e.epoch = epoch;
  e.tick = ++tick_;
  ++stats_.insertions;
  evict_lru(bfs_, sssp_.size(), dist_capacity_);
}

void ResultCache::put_sssp(graph::VertexId source, std::uint64_t epoch,
                           std::vector<std::uint64_t> dist) {
  auto& e = sssp_[{source, epoch}];
  e.value = std::move(dist);
  e.epoch = epoch;
  e.tick = ++tick_;
  ++stats_.insertions;
  evict_lru(sssp_, bfs_.size(), dist_capacity_);
}

void ResultCache::put_ppr(graph::VertexId seed, double alpha, double eps,
                          std::uint64_t epoch,
                          std::vector<ScoredVertex> ranked) {
  const PprKey key{seed, std::bit_cast<std::uint64_t>(alpha),
                   std::bit_cast<std::uint64_t>(eps), epoch};
  auto& e = ppr_[key];
  e.value = std::move(ranked);
  e.epoch = epoch;
  e.tick = ++tick_;
  ++stats_.insertions;
  evict_lru(ppr_, 0, ppr_capacity_);
}

void ResultCache::invalidate_stale(std::uint64_t current_epoch) {
  const auto sweep = [&](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      if (it->second.epoch != current_epoch) {
        it = map.erase(it);
        ++stats_.invalidations;
      } else {
        ++it;
      }
    }
  };
  sweep(bfs_);
  sweep(sssp_);
  sweep(ppr_);
}

}  // namespace sg::serve
