#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "engine/stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sg::obs {

/// Version of the run-report JSON schema. Bump when a field is renamed
/// or its meaning changes; pure additions keep the version. v2 added
/// the opt-in, nondeterministic-marked `host_time` run section.
inline constexpr int kReportSchemaVersion = 2;
/// Oldest schema the diff tooling still reads. v1 reports differ from
/// v2 only by the absence of `host_time`, so committed v1 baselines
/// keep working.
inline constexpr int kReportMinSchemaVersion = 1;

/// Identity of one run inside a report. `label` is the diff key —
/// stable across report generations of the same bench — so keep it a
/// deterministic function of the run configuration.
struct ReportMeta {
  std::string bench;      ///< producing binary ("table2_singlehost")
  std::string label;      ///< unique within the report ("bfs/rmat23/Var4/4")
  std::string benchmark;  ///< algorithm ("bfs")
  std::string input;      ///< dataset analogue name
  std::string system;     ///< framework facade ("D-IrGL", "Lux", ...)
  std::string config;     ///< variant / free-form config description
  int devices = 0;
  std::uint64_t seed = 0;
};

class Profiler;  // obs/prof.hpp

/// Measured host wall-clock data for one run. Opt-in per run: a report
/// without it is byte-identical to schema v1 output, which is how the
/// clean-run byte-identity CI contract survives the profiler. All of
/// it is serialized under a `"nondeterministic":true` marker and never
/// participates in exact-threshold diffing (see DiffOptions).
struct HostTime {
  double host_wall_ms = 0.0;        ///< end-to-end host wall time
  const Profiler* profiler = nullptr;  ///< optional scoped profile tree
};

/// Serializes one run (meta + RunStats + optional registry snapshot +
/// optional trace summary + optional host wall-clock section) as a
/// JSON object into `w`.
void write_run_json(JsonWriter& w, const ReportMeta& meta,
                    const engine::RunStats& stats,
                    const Registry* metrics = nullptr,
                    const Tracer* trace = nullptr,
                    const HostTime* host = nullptr);

/// Accumulates runs and serializes them under the versioned report
/// envelope:
///   {"schema_version":1,"generator":"scalegraph","bench":NAME,
///    "runs":[ ... ]}
class ReportWriter {
 public:
  explicit ReportWriter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void add(const ReportMeta& meta, const engine::RunStats& stats,
           const Registry* metrics = nullptr, const Tracer* trace = nullptr,
           const HostTime* host = nullptr);

  [[nodiscard]] std::size_t num_runs() const { return runs_.size(); }
  [[nodiscard]] std::string json() const;
  /// Writes json() to `path`; false on I/O failure.
  bool write_file(const std::filesystem::path& path) const;

 private:
  std::string bench_;
  std::vector<std::string> runs_;  // pre-serialized run objects
};

/// Single-run convenience: the `sg::obs::write_report` entry point from
/// the design doc. False on I/O failure.
bool write_report(const std::filesystem::path& path, const ReportMeta& meta,
                  const engine::RunStats& stats,
                  const Registry* metrics = nullptr,
                  const Tracer* trace = nullptr);

// ---- report diffing ------------------------------------------------------

struct DiffOptions {
  /// Relative regression threshold for the simulated-time metrics:
  /// metric `m` regressed when current > baseline * (1 + threshold)
  /// (one-sided — improvements never flag).
  double threshold = 0.05;
  /// Relative tolerance for the nondeterministic host-time metrics
  /// (`host_wall_ms`). Negative (the default) skips them entirely, so
  /// plain diffs over simulated-time fields stay flake-free; CI legs
  /// that gate host time pass a generous band (e.g. 5.0 = 6x).
  double rel_tolerance = -1.0;
  /// Per-metric threshold overrides ("host_wall_ms" -> 8.0). A band
  /// naming a host-time metric also enables it, like rel_tolerance.
  std::vector<std::pair<std::string, double>> bands;

  /// Band lookup; falls back to `dflt` when no band names `metric`.
  [[nodiscard]] double band_or(const std::string& metric,
                               double dflt) const {
    for (const auto& [name, tol] : bands)
      if (name == metric) return tol;
    return dflt;
  }
};

struct DiffItem {
  std::string run;     ///< run label
  std::string metric;  ///< "total_time_s" / "total_volume_bytes" / "rounds"
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;  ///< (current - baseline) / baseline
  bool regressed = false;
};

struct DiffResult {
  bool ok = false;     ///< both inputs parsed as compatible reports
  std::string error;   ///< set when !ok
  std::vector<DiffItem> items;
  std::vector<std::string> missing_runs;  ///< in baseline, not in current
  std::vector<std::string> new_runs;      ///< in current, not in baseline

  [[nodiscard]] int regressions() const {
    int n = 0;
    for (const DiffItem& i : items) n += i.regressed ? 1 : 0;
    return n;
  }
};

/// Compares two parsed reports run-by-run (matched on label) over the
/// regression-guard metrics: total_time_s, comm total volume, and
/// global rounds. A run missing from `current` is reported in
/// `missing_runs` (and counts as a failure for the tool's exit code).
[[nodiscard]] DiffResult diff_reports(const JsonValue& baseline,
                                      const JsonValue& current,
                                      const DiffOptions& opts = {});

/// File-based wrapper: parses both paths and diffs.
[[nodiscard]] DiffResult diff_report_files(
    const std::filesystem::path& baseline,
    const std::filesystem::path& current, const DiffOptions& opts = {});

}  // namespace sg::obs
