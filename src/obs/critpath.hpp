#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "engine/stats.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/sim_time.hpp"

namespace sg::obs {

/// Version of the sg_explain report schema (the "sg_explain_schema"
/// field of render_explain_json). Bump on renames or meaning changes;
/// pure additions keep it.
inline constexpr int kExplainSchemaVersion = 1;

/// The paper's breakdown taxonomy (Fig. 4-6), measured *on the critical
/// path* rather than as wall-clock sums: compute, device-host transfer
/// (PCIe + same-host DRAM staging), inter-host network, and waiting.
/// kRuntime covers checkpoint/rehome/barrier-mapping overhead; kIdle is
/// untracked time (gaps between causally linked spans).
enum class CpCategory : std::uint8_t {
  kCompute,
  kDeviceHost,
  kInterHost,
  kWait,
  kRuntime,
  kIdle,
};
inline constexpr int kNumCpCategories = 6;

[[nodiscard]] const char* to_string(CpCategory c);

/// Maps a span to its breakdown category. Same-host "network" hops are
/// DRAM staging copies (the executor names them "*.staging"), so they
/// count as device-host, not inter-host.
[[nodiscard]] CpCategory categorize(SpanKind kind, std::string_view name);

/// Analyzer-side span: like obs::Span but owning its name, so a view
/// can outlive a Tracer or be parsed back from an exported trace file.
struct CpSpan {
  std::string name;
  sim::SimTime begin;
  sim::SimTime end;
  std::uint64_t arg_a = 0;
  std::uint64_t arg_b = 0;
  std::uint64_t seq = 0;
  std::int32_t track = 0;
  SpanKind kind = SpanKind::kOther;

  [[nodiscard]] sim::SimTime duration() const { return end - begin; }
};

/// Immutable snapshot of one run's span DAG: spans ordered by
/// (track, begin, seq), causal edges, track names, drop accounting.
/// Built either from a live Tracer or from an exported Chrome trace.
struct TraceView {
  std::vector<CpSpan> spans;
  std::vector<SpanLink> links;
  std::vector<std::string> track_names;
  std::uint64_t dropped = 0;

  [[nodiscard]] std::string track_label(std::int32_t track) const;

  [[nodiscard]] static TraceView from_tracer(const Tracer& tracer);
  /// Rebuilds a view from Tracer::chrome_trace_json output ("X" events
  /// with args.seq, "M" thread_name metadata, "sgLinks", otherData).
  /// Throws std::runtime_error on schema violations (missing
  /// traceEvents, spans without args.seq, malformed links).
  [[nodiscard]] static TraceView from_chrome_trace(const JsonValue& doc);
};

/// One piece of the critical path. Segments are contiguous and
/// partition [0, makespan] in forward time order, so per-category
/// durations sum exactly to the critical-path length. `span` indexes
/// TraceView::spans; kNoSpan marks idle gaps with no covering span.
struct CpSegment {
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  std::size_t span = kNoSpan;
  sim::SimTime begin;
  sim::SimTime end;
  CpCategory category = CpCategory::kIdle;
  std::int32_t track = -1;
  std::uint64_t round = 0;  ///< round context (0 before the first round)

  [[nodiscard]] sim::SimTime duration() const { return end - begin; }
};

/// Per-track share of the critical path. `blame_pct` is the fraction of
/// the end-to-end critical path spent on this track's spans; `slack` is
/// the complementary off-path time (how long the track could stall, in
/// aggregate, before it alone determined the makespan).
struct CpTrackBlame {
  std::int32_t track = -1;
  std::string name;
  sim::SimTime on_path;
  double blame_pct = 0.0;
  sim::SimTime slack;
};

/// Per-round critical-path breakdown. A round's cost is its kernels
/// plus the communication and waits that gated them (segments between
/// consecutive round markers on the path). Under BASP rounds are local
/// round indices of whichever device the path traverses.
struct CpRoundRow {
  std::uint64_t round = 0;
  sim::SimTime length;
  std::array<sim::SimTime, kNumCpCategories> by_category{};
};

/// Straggler candidate: z-score of a device's mean kernel time against
/// the fleet. |z| >= 2 is flagged in the hints.
struct CpStraggler {
  std::int32_t track = -1;
  std::string name;
  std::uint64_t kernels = 0;
  double mean_kernel_s = 0.0;
  double z = 0.0;
};

/// Optional live-run context that sharpens the rule-based hints; every
/// field is optional (the trace-file path through sg_explain has none).
struct ExplainContext {
  const engine::RunStats* stats = nullptr;
  int num_hosts = 0;
  /// Average proxies per master vertex (SyncStructure::replication_factor).
  double replication_factor = 0.0;
  /// Fixed (latency + software overhead) share of one cross-host hop
  /// (Interconnect::host_to_host_fixed); < 0 when unknown.
  double net_fixed_cost_s = -1.0;
  std::string config;  ///< free-form variant description for the header
};

struct ExplainOptions {
  int top_k = 10;  ///< bottleneck spans / rounds listed in the report
};

/// Full attribution result. `cp_length` equals `makespan` by
/// construction (the walk partitions [0, makespan]); per-category times
/// sum exactly to it.
struct CpAnalysis {
  sim::SimTime makespan;   ///< end of the latest span in the trace
  sim::SimTime cp_length;  ///< length of the attributed critical path
  std::array<sim::SimTime, kNumCpCategories> by_category{};
  std::vector<CpSegment> segments;      ///< forward time order
  std::vector<CpTrackBlame> tracks;     ///< descending blame
  std::vector<CpRoundRow> rounds;       ///< ascending round
  std::vector<CpStraggler> stragglers;  ///< descending z
  std::vector<std::string> hints;       ///< deterministic rule output
  std::uint64_t dropped = 0;

  [[nodiscard]] double category_pct(CpCategory c) const {
    return cp_length.seconds() > 0.0
               ? by_category[static_cast<std::size_t>(c)].seconds() /
                     cp_length.seconds() * 100.0
               : 0.0;
  }
};

/// Walks the span DAG backward from the globally latest-ending span.
/// At each span the binding predecessor is the latest-ending causal
/// parent (explicit SpanLink edges plus the same-track predecessor);
/// attribution is time-clamped so overlapping parents never double
/// count. The result partitions [0, makespan] into segments.
[[nodiscard]] CpAnalysis analyze_critical_path(
    const TraceView& view, const ExplainContext* ctx = nullptr);

/// Deterministic human-readable report (byte-identical for identical
/// traces): breakdown, per-device blame, top-k bottleneck spans,
/// straggler ranking, hints.
void render_explain_text(std::ostream& os, const TraceView& view,
                         const CpAnalysis& a, const ExplainOptions& opts = {},
                         const ExplainContext* ctx = nullptr);

/// Machine-readable twin under {"sg_explain_schema":1, ...}.
[[nodiscard]] std::string render_explain_json(
    const TraceView& view, const CpAnalysis& a,
    const ExplainOptions& opts = {}, const ExplainContext* ctx = nullptr);

}  // namespace sg::obs
