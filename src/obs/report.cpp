#include "obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/prof.hpp"

namespace sg::obs {

namespace {

void write_comm_json(JsonWriter& w, const comm::CommStats& c) {
  w.begin_object();
  w.kv("device_to_host_bytes", c.device_to_host_bytes);
  w.kv("host_to_host_bytes", c.host_to_host_bytes);
  w.kv("host_to_device_bytes", c.host_to_device_bytes);
  w.kv("messages", c.messages);
  w.kv("reduce_values", c.reduce_values);
  w.kv("broadcast_values", c.broadcast_values);
  w.kv("retransmitted_messages", c.retransmitted_messages);
  w.kv("retransmitted_bytes", c.retransmitted_bytes);
  w.kv("total_volume_bytes", c.total_volume());
  w.end_object();
}

void write_faults_json(JsonWriter& w, const fault::FaultStats& f) {
  w.begin_object();
  w.kv("faults_injected", f.faults_injected);
  w.kv("device_crashes", f.device_crashes);
  w.kv("messages_dropped", f.messages_dropped);
  w.kv("retries", f.retries);
  w.kv("retransmitted_bytes", f.retransmitted_bytes);
  w.kv("checkpoints_taken", f.checkpoints_taken);
  w.kv("checkpoint_bytes", f.checkpoint_bytes);
  w.kv("rollbacks", f.rollbacks);
  w.kv("degraded_recoveries", f.degraded_recoveries);
  w.kv("reexecuted_rounds", f.reexecuted_rounds);
  w.kv("evicted_devices", f.evicted_devices);
  w.kv("rehomed_masters", f.rehomed_masters);
  w.kv("migrated_vertices", f.migrated_vertices);
  w.kv("straggler_suspicions", f.straggler_suspicions);
  w.kv("heartbeats_observed", f.heartbeats_observed);
  w.kv("checkpoint_time_s", f.checkpoint_time.seconds());
  w.kv("recovery_time_s", f.recovery_time.seconds());
  w.kv("straggler_delay_s", f.straggler_delay.seconds());
  w.kv("detection_latency_s", f.detection_latency.seconds());
  w.kv("termination_clean", f.termination_clean);
  // Wire-protocol / partition counters, emitted only when nonzero so a
  // clean run's report stays byte-identical to pre-protocol baselines.
  if (f.messages_corrupted != 0) {
    w.kv("messages_corrupted", f.messages_corrupted);
  }
  if (f.corrupt_applied != 0) w.kv("corrupt_applied", f.corrupt_applied);
  if (f.duplicates_injected != 0) {
    w.kv("duplicates_injected", f.duplicates_injected);
  }
  if (f.duplicates_discarded != 0) {
    w.kv("duplicates_discarded", f.duplicates_discarded);
  }
  if (f.reorders_injected != 0) {
    w.kv("reorders_injected", f.reorders_injected);
  }
  if (f.reorder_buffered != 0) w.kv("reorder_buffered", f.reorder_buffered);
  if (f.fence_rejects != 0) w.kv("fence_rejects", f.fence_rejects);
  if (f.partition_deferred != 0) {
    w.kv("partition_deferred", f.partition_deferred);
  }
  if (f.partition_evictions != 0) {
    w.kv("partition_evictions", f.partition_evictions);
  }
  // Gray-failure counters, same nonzero-only contract: a clean run (or
  // one without degradation faults) reports byte-identically whether or
  // not the monitor is compiled in.
  if (f.gray_alerts != 0) w.kv("gray_alerts", f.gray_alerts);
  if (f.gray_migrations != 0) w.kv("gray_migrations", f.gray_migrations);
  if (f.gray_migrated_masters != 0) {
    w.kv("gray_migrated_masters", f.gray_migrated_masters);
  }
  if (f.gray_migrated_bytes != 0) {
    w.kv("gray_migrated_bytes", f.gray_migrated_bytes);
  }
  if (f.gray_evictions != 0) w.kv("gray_evictions", f.gray_evictions);
  if (f.spill_bytes != 0) w.kv("spill_bytes", f.spill_bytes);
  if (f.degrade_delay.seconds() != 0.0) {
    w.kv("degrade_delay_s", f.degrade_delay.seconds());
  }
  if (f.spill_stall.seconds() != 0.0) {
    w.kv("spill_stall_s", f.spill_stall.seconds());
  }
  if (f.mitigation_time.seconds() != 0.0) {
    w.kv("mitigation_time_s", f.mitigation_time.seconds());
  }
  // SDC / integrity-audit counters, same nonzero-only contract: a run
  // with no SDC faults injected reports byte-identically whether or not
  // the auditor ran (sdc_audits is gated on injection for this reason —
  // the audit-pass count is only interesting when something was hit).
  if (f.sdc_injected != 0) {
    w.kv("sdc_injected", f.sdc_injected);
    w.kv("sdc_detected", f.sdc_detected);
    w.kv("sdc_repaired", f.sdc_repaired);
    w.kv("sdc_audits", f.sdc_audits);
    if (f.sdc_escalations != 0) w.kv("sdc_escalations", f.sdc_escalations);
  }
  if (!f.degrade.empty()) {
    w.key("degrade").begin_array();
    for (const fault::DegradeStats& d : f.degrade) {
      if (!d.any()) continue;
      w.begin_object();
      w.kv("device", d.device);
      if (d.degrade_delay.seconds() != 0.0) {
        w.kv("degrade_delay_s", d.degrade_delay.seconds());
      }
      if (d.spill_stall.seconds() != 0.0) {
        w.kv("spill_stall_s", d.spill_stall.seconds());
      }
      if (d.spill_bytes != 0) w.kv("spill_bytes", d.spill_bytes);
      if (d.pressure_peak_bytes != 0) {
        w.kv("pressure_peak_bytes", d.pressure_peak_bytes);
      }
      if (d.peak_score != 0.0) w.kv("peak_score", d.peak_score);
      if (d.migrations_off != 0) w.kv("migrations_off", d.migrations_off);
      if (d.masters_moved_off != 0) {
        w.kv("masters_moved_off", d.masters_moved_off);
      }
      w.end_object();
    }
    w.end_array();
  }
  if (!f.sdc.empty()) {
    w.key("sdc").begin_array();
    for (const fault::SdcStats& s : f.sdc) {
      if (!s.any()) continue;
      w.begin_object();
      w.kv("device", s.device);
      if (s.label_flips != 0) w.kv("label_flips", s.label_flips);
      if (s.kernel_events != 0) w.kv("kernel_events", s.kernel_events);
      if (s.checkpoint_flips != 0) {
        w.kv("checkpoint_flips", s.checkpoint_flips);
      }
      if (s.digest_violations != 0) {
        w.kv("digest_violations", s.digest_violations);
      }
      if (s.invariant_violations != 0) {
        w.kv("invariant_violations", s.invariant_violations);
      }
      if (s.checkpoint_violations != 0) {
        w.kv("checkpoint_violations", s.checkpoint_violations);
      }
      if (s.repairs_mirror != 0) w.kv("repairs_mirror", s.repairs_mirror);
      if (s.repairs_rollback != 0) {
        w.kv("repairs_rollback", s.repairs_rollback);
      }
      if (s.repairs_restart != 0) w.kv("repairs_restart", s.repairs_restart);
      if (s.quarantined_shards != 0) {
        w.kv("quarantined_shards", s.quarantined_shards);
      }
      if (s.escalations != 0) w.kv("escalations", s.escalations);
      if (s.max_detect_lag_rounds != 0) {
        w.kv("max_detect_lag_rounds", s.max_detect_lag_rounds);
      }
      w.end_object();
    }
    w.end_array();
  }
  if (!f.pairs.empty()) {
    w.key("pair_anomalies").begin_array();
    for (const fault::PairAnomalies& p : f.pairs) {
      if (p.total() == 0) continue;
      w.begin_object();
      w.kv("from", p.from);
      w.kv("to", p.to);
      if (p.dropped != 0) w.kv("dropped", p.dropped);
      if (p.corrupted != 0) w.kv("corrupted", p.corrupted);
      if (p.duplicated != 0) w.kv("duplicated", p.duplicated);
      if (p.reordered != 0) w.kv("reordered", p.reordered);
      if (p.deferred != 0) w.kv("deferred", p.deferred);
      if (p.fenced != 0) w.kv("fenced", p.fenced);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_stats_json(JsonWriter& w, const engine::RunStats& st) {
  w.begin_object();
  w.kv("total_time_s", st.total_time.seconds());
  w.kv("global_rounds", st.global_rounds);
  w.kv("max_compute_s", st.max_compute().seconds());
  w.kv("min_wait_s", st.min_wait().seconds());
  w.kv("max_device_comm_s", st.max_device_comm().seconds());
  w.kv("total_work", st.total_work());
  w.kv("min_rounds", st.min_rounds());
  w.kv("max_rounds", st.max_rounds());
  w.kv("max_memory_bytes", st.max_memory());
  w.kv("dynamic_balance", st.dynamic_balance());
  w.kv("memory_balance", st.memory_balance());
  w.key("comm");
  write_comm_json(w, st.comm);
  w.key("faults");
  write_faults_json(w, st.faults);

  w.key("per_device").begin_object();
  w.key("compute_s").begin_array();
  for (const auto t : st.compute_time) w.value(t.seconds());
  w.end_array();
  w.key("wait_s").begin_array();
  for (const auto t : st.wait_time) w.value(t.seconds());
  w.end_array();
  w.key("device_comm_s").begin_array();
  for (const auto t : st.device_comm_time) w.value(t.seconds());
  w.end_array();
  w.key("work_items").begin_array();
  for (const auto x : st.work_items) w.value(x);
  w.end_array();
  w.key("rounds").begin_array();
  for (const auto r : st.rounds) w.value(r);
  w.end_array();
  w.key("peak_memory_bytes").begin_array();
  for (const auto b : st.peak_memory) w.value(b);
  w.end_array();
  w.key("evicted").begin_array();
  for (const auto e : st.evicted) w.value(e != 0);
  w.end_array();
  w.end_object();

  if (!st.trace.empty()) {
    w.key("rounds_trace").begin_array();
    for (const auto& tr : st.trace) {
      w.begin_object();
      w.kv("round", tr.round);
      w.kv("active_vertices", tr.active_vertices);
      w.kv("edges", tr.edges);
      w.kv("volume_bytes", tr.volume_bytes);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

}  // namespace

void write_run_json(JsonWriter& w, const ReportMeta& meta,
                    const engine::RunStats& stats, const Registry* metrics,
                    const Tracer* trace, const HostTime* host) {
  w.begin_object();
  w.key("meta").begin_object();
  w.kv("bench", meta.bench);
  w.kv("label", meta.label);
  w.kv("benchmark", meta.benchmark);
  w.kv("input", meta.input);
  w.kv("system", meta.system);
  w.kv("config", meta.config);
  w.kv("devices", meta.devices);
  w.kv("seed", meta.seed);
  w.end_object();
  w.key("stats");
  write_stats_json(w, stats);
  if (metrics != nullptr) {
    w.key("metrics");
    metrics->write_json(w);
  }
  if (trace != nullptr) {
    if (trace->dropped() > 0) {
      std::fprintf(stderr,
                   "obs: warning: %llu span(s) dropped (per-track cap %zu); "
                   "run '%s' trace summary will not reconcile with RunStats\n",
                   static_cast<unsigned long long>(trace->dropped()),
                   trace->per_track_cap(), meta.label.c_str());
    }
    // Summary only — the span stream itself goes to the Chrome trace
    // file, which is too large to embed in every report.
    w.key("trace").begin_object();
    w.kv("tracks", trace->num_tracks());
    w.kv("recorded_spans", trace->recorded());
    w.kv("dropped_spans", trace->dropped());
    w.kv("per_track_cap", static_cast<std::uint64_t>(trace->per_track_cap()));
    w.end_object();
  }
  if (host != nullptr) {
    // Host wall time is real (nondeterministic) time: it lives in its
    // own marked section so the simulated-time fields above stay
    // byte-identical across reruns, and diffing only touches it under
    // an explicit rel_tolerance / band.
    w.key("host_time").begin_object();
    w.kv("nondeterministic", true);
    w.kv("host_wall_ms", host->host_wall_ms);
    if (host->profiler != nullptr) {
      w.key("profile");
      host->profiler->write_json(w);
    }
    w.end_object();
  }
  w.end_object();
}

void ReportWriter::add(const ReportMeta& meta, const engine::RunStats& stats,
                       const Registry* metrics, const Tracer* trace,
                       const HostTime* host) {
  JsonWriter w;
  ReportMeta m = meta;
  if (m.bench.empty()) m.bench = bench_;
  write_run_json(w, m, stats, metrics, trace, host);
  runs_.push_back(w.take());
}

std::string ReportWriter::json() const {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kReportSchemaVersion);
  out += ",\"generator\":\"scalegraph\",\"bench\":";
  JsonWriter bw;
  bw.value(bench_);
  out += bw.take();
  out += ",\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i > 0) out += ',';
    out += runs_[i];
  }
  out += "]}";
  return out;
}

bool ReportWriter::write_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string doc = json();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
  return out.good();
}

bool write_report(const std::filesystem::path& path, const ReportMeta& meta,
                  const engine::RunStats& stats, const Registry* metrics,
                  const Tracer* trace) {
  ReportWriter w(meta.bench.empty() ? std::string("run") : meta.bench);
  w.add(meta, stats, metrics, trace);
  return w.write_file(path);
}

// ---- diff ----------------------------------------------------------------

namespace {

struct RunView {
  const JsonValue* run = nullptr;
  std::string label;
};

bool collect_runs(const JsonValue& report, std::vector<RunView>& out,
                  std::string& error) {
  const JsonValue* ver = report.find("schema_version");
  if (ver == nullptr || ver->kind != JsonValue::Kind::kNumber) {
    error = "not a scalegraph run report (missing schema_version)";
    return false;
  }
  const int schema = static_cast<int>(ver->number);
  if (schema < kReportMinSchemaVersion || schema > kReportSchemaVersion) {
    error = "schema_version mismatch: report has " +
            format_double(ver->number) + ", tool understands " +
            std::to_string(kReportMinSchemaVersion) + ".." +
            std::to_string(kReportSchemaVersion);
    return false;
  }
  const JsonValue* runs = report.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    error = "report has no runs array";
    return false;
  }
  for (const JsonValue& r : runs->array) {
    const JsonValue* label = r.find("meta.label");
    RunView v;
    v.run = &r;
    v.label = label != nullptr ? label->str_or("") : "";
    out.push_back(std::move(v));
  }
  return true;
}

void diff_metric(const std::string& run_label, const std::string& metric,
                 const char* path, const JsonValue& base,
                 const JsonValue& cur, double threshold, DiffResult& out) {
  const JsonValue* b = base.find(path);
  const JsonValue* c = cur.find(path);
  if (b == nullptr || c == nullptr) return;
  DiffItem item;
  item.run = run_label;
  item.metric = metric;
  item.baseline = b->num_or(0.0);
  item.current = c->num_or(0.0);
  if (item.baseline != 0.0) {
    item.rel_delta = (item.current - item.baseline) / item.baseline;
    item.regressed = item.current > item.baseline * (1.0 + threshold);
  } else {
    item.rel_delta = item.current == 0.0 ? 0.0 : 1.0;
    item.regressed = item.current > 0.0;
  }
  out.items.push_back(std::move(item));
}

}  // namespace

DiffResult diff_reports(const JsonValue& baseline, const JsonValue& current,
                        const DiffOptions& opts) {
  DiffResult res;
  std::vector<RunView> base_runs;
  std::vector<RunView> cur_runs;
  if (!collect_runs(baseline, base_runs, res.error)) return res;
  if (!collect_runs(current, cur_runs, res.error)) return res;
  res.ok = true;

  for (const RunView& b : base_runs) {
    const RunView* match = nullptr;
    for (const RunView& c : cur_runs) {
      if (c.label == b.label) {
        match = &c;
        break;
      }
    }
    if (match == nullptr) {
      res.missing_runs.push_back(b.label);
      continue;
    }
    diff_metric(b.label, "total_time_s", "stats.total_time_s", *b.run,
                *match->run, opts.band_or("total_time_s", opts.threshold),
                res);
    diff_metric(b.label, "total_volume_bytes",
                "stats.comm.total_volume_bytes", *b.run, *match->run,
                opts.band_or("total_volume_bytes", opts.threshold), res);
    diff_metric(b.label, "global_rounds", "stats.global_rounds", *b.run,
                *match->run, opts.band_or("global_rounds", opts.threshold),
                res);
    // Host wall time is nondeterministic; compare it only when the
    // caller opted in via rel_tolerance or an explicit band, so plain
    // simulated-time diffs never flake on machine noise.
    const double host_tol =
        opts.band_or("host_wall_ms", opts.rel_tolerance);
    if (host_tol >= 0.0) {
      diff_metric(b.label, "host_wall_ms", "host_time.host_wall_ms", *b.run,
                  *match->run, host_tol, res);
    }
  }
  for (const RunView& c : cur_runs) {
    bool known = false;
    for (const RunView& b : base_runs) {
      if (b.label == c.label) {
        known = true;
        break;
      }
    }
    if (!known) res.new_runs.push_back(c.label);
  }
  return res;
}

DiffResult diff_report_files(const std::filesystem::path& baseline,
                             const std::filesystem::path& current,
                             const DiffOptions& opts) {
  DiffResult res;
  auto load = [&res](const std::filesystem::path& p,
                     JsonValue& out) -> bool {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      res.error = "cannot open " + p.string();
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      out = parse_json(ss.str());
    } catch (const std::exception& e) {
      res.error = p.string() + ": " + e.what();
      return false;
    }
    return true;
  };
  JsonValue b;
  JsonValue c;
  if (!load(baseline, b) || !load(current, c)) return res;
  return diff_reports(b, c, opts);
}

}  // namespace sg::obs
