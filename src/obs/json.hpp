#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sg::obs {

/// Minimal dependency-free JSON support for the observability layer:
/// a streaming writer with deterministic number formatting (trace and
/// report files are golden-file tested, so identical inputs must give
/// byte-identical output) and a small recursive-descent parser for
/// `report_diff` and the tests. Not a general-purpose JSON library.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint32_t u) {
    return value(static_cast<std::uint64_t>(u));
  }
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Serialized document so far. Well-formed once every container
  /// opened has been closed.
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void separate();
  void escape(std::string_view s);

  std::string out_;
  std::vector<char> stack_;  // '{' or '[' per open container
  std::vector<bool> first_;  // next element is the container's first
  bool pending_key_ = false;
};

/// Shortest round-trip decimal representation of `d` (std::to_chars),
/// the formatting every obs serializer uses.
[[nodiscard]] std::string format_double(double d);

/// Parsed JSON tree. Objects use std::map, so iteration order is
/// name-sorted rather than document order — fine for diffing/tests.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  /// Looks up a dotted path ("stats.comm.total_volume_bytes") through
  /// nested objects; nullptr when any component is missing.
  [[nodiscard]] const JsonValue* find(std::string_view dotted_path) const;

  [[nodiscard]] double num_or(double dflt) const {
    return kind == Kind::kNumber ? number : dflt;
  }
  [[nodiscard]] const std::string& str_or(const std::string& dflt) const {
    return kind == Kind::kString ? string : dflt;
  }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
};

/// Parses a complete JSON document; throws std::runtime_error with an
/// offset-annotated message on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace sg::obs
