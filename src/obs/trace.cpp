#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"

namespace sg::obs {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kExtract: return "extract";
    case SpanKind::kPcie: return "pcie";
    case SpanKind::kNet: return "net";
    case SpanKind::kApply: return "apply";
    case SpanKind::kWait: return "wait";
    case SpanKind::kCheckpoint: return "checkpoint";
    case SpanKind::kRehome: return "rehome";
    case SpanKind::kOther: return "other";
  }
  return "other";
}

namespace {

/// Kind-specific labels for the two generic span args in the exported
/// JSON (so Perfetto tooltips read "bytes: 4096" rather than "a: 4096").
struct ArgNames {
  const char* a;
  const char* b;
};

ArgNames arg_names(SpanKind k) {
  switch (k) {
    case SpanKind::kKernel: return {"edges", "round"};
    case SpanKind::kExtract:
    case SpanKind::kPcie:
    case SpanKind::kNet:
    case SpanKind::kApply: return {"bytes", "peer"};
    case SpanKind::kWait: return {"bytes", "peer"};
    case SpanKind::kCheckpoint: return {"bytes", "round"};
    case SpanKind::kRehome: return {"rehomed", "migrated"};
    case SpanKind::kOther: return {"a", "b"};
  }
  return {"a", "b"};
}

}  // namespace

void Tracer::require_tracks(int n) {
  if (n > static_cast<int>(tracks_.size())) {
    tracks_.resize(static_cast<std::size_t>(n));
  }
}

void Tracer::name_track(int track, std::string name) {
  require_tracks(track + 1);
  tracks_[static_cast<std::size_t>(track)].name = std::move(name);
}

void Tracer::record(int track, SpanKind kind, const char* name,
                    sim::SimTime begin, sim::SimTime end, std::uint64_t arg_a,
                    std::uint64_t arg_b) {
  if (track < 0 || track >= static_cast<int>(tracks_.size())) return;
  Track& t = tracks_[static_cast<std::size_t>(track)];
  Span s;
  s.name = name;
  s.begin = begin;
  s.end = end;
  s.arg_a = arg_a;
  s.arg_b = arg_b;
  s.seq = t.seq++;
  s.track = track;
  s.kind = kind;
  ++recorded_;
  if (t.ring.size() < cap_) {
    t.ring.push_back(s);
  } else {
    t.ring[t.next] = s;
    t.next = (t.next + 1) % cap_;
    ++t.dropped;
  }
}

std::vector<Span> Tracer::sorted_spans() const {
  std::vector<Span> out;
  std::size_t total = 0;
  for (const Track& t : tracks_) total += t.ring.size();
  out.reserve(total);
  for (const Track& t : tracks_) {
    out.insert(out.end(), t.ring.begin(), t.ring.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.track != b.track) return a.track < b.track;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.seq < b.seq;
  });
  return out;
}

sim::SimTime Tracer::kind_sum(int track, SpanKind kind) const {
  sim::SimTime sum;
  if (track < 0 || track >= static_cast<int>(tracks_.size())) return sum;
  for (const Span& s : tracks_[static_cast<std::size_t>(track)].ring) {
    if (s.kind == kind) sum += s.end - s.begin;
  }
  return sum;
}

sim::SimTime Tracer::comm_sum(int track) const {
  return kind_sum(track, SpanKind::kExtract) +
         kind_sum(track, SpanKind::kPcie) + kind_sum(track, SpanKind::kApply);
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t d = 0;
  for (const Track& t : tracks_) d += t.dropped;
  return d;
}

void Tracer::clear() {
  for (Track& t : tracks_) {
    t.ring.clear();
    t.next = 0;
    t.seq = 0;
    t.dropped = 0;
  }
  recorded_ = 0;
}

std::string Tracer::chrome_trace_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("clock", "simulated");
  w.kv("recorded", recorded_);
  w.kv("dropped", dropped());
  w.end_object();
  w.key("traceEvents").begin_array();

  // Process + thread metadata so Perfetto labels the tracks.
  w.begin_object();
  w.kv("ph", "M").kv("pid", 0).kv("tid", 0).kv("name", "process_name");
  w.key("args").begin_object().kv("name", "scalegraph-sim").end_object();
  w.end_object();
  for (int t = 0; t < num_tracks(); ++t) {
    const std::string& name = tracks_[static_cast<std::size_t>(t)].name;
    w.begin_object();
    w.kv("ph", "M").kv("pid", 0).kv("tid", t).kv("name", "thread_name");
    w.key("args").begin_object();
    w.kv("name", name.empty() ? "track " + std::to_string(t) : name);
    w.end_object();
    w.end_object();
    // sort_index keeps tracks in id order rather than name order.
    w.begin_object();
    w.kv("ph", "M").kv("pid", 0).kv("tid", t).kv("name", "thread_sort_index");
    w.key("args").begin_object().kv("sort_index", t).end_object();
    w.end_object();
  }

  for (const Span& s : sorted_spans()) {
    const ArgNames an = arg_names(s.kind);
    w.begin_object();
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", s.track);
    w.kv("name", s.name);
    w.kv("cat", to_string(s.kind));
    w.kv("ts", s.begin.micros());
    const double dur = (s.end - s.begin).micros();
    w.kv("dur", dur < 0.0 ? 0.0 : dur);
    w.key("args").begin_object();
    w.kv(an.a, s.arg_a);
    w.kv(an.b, s.arg_b);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write_chrome_trace(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = chrome_trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  return out.good();
}

}  // namespace sg::obs
