#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

namespace sg::obs {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kExtract: return "extract";
    case SpanKind::kPcie: return "pcie";
    case SpanKind::kNet: return "net";
    case SpanKind::kApply: return "apply";
    case SpanKind::kWait: return "wait";
    case SpanKind::kCheckpoint: return "checkpoint";
    case SpanKind::kRehome: return "rehome";
    case SpanKind::kOther: return "other";
  }
  return "other";
}

SpanKind span_kind_from_string(std::string_view s) {
  if (s == "kernel") return SpanKind::kKernel;
  if (s == "extract") return SpanKind::kExtract;
  if (s == "pcie") return SpanKind::kPcie;
  if (s == "net") return SpanKind::kNet;
  if (s == "apply") return SpanKind::kApply;
  if (s == "wait") return SpanKind::kWait;
  if (s == "checkpoint") return SpanKind::kCheckpoint;
  if (s == "rehome") return SpanKind::kRehome;
  return SpanKind::kOther;
}

namespace {

/// Kind-specific labels for the two generic span args in the exported
/// JSON (so Perfetto tooltips read "bytes: 4096" rather than "a: 4096").
struct ArgNames {
  const char* a;
  const char* b;
};

ArgNames arg_names(SpanKind k) {
  switch (k) {
    case SpanKind::kKernel: return {"edges", "round"};
    case SpanKind::kExtract:
    case SpanKind::kPcie:
    case SpanKind::kNet:
    case SpanKind::kApply: return {"bytes", "peer"};
    case SpanKind::kWait: return {"bytes", "peer"};
    case SpanKind::kCheckpoint: return {"bytes", "round"};
    case SpanKind::kRehome: return {"rehomed", "migrated"};
    case SpanKind::kOther: return {"a", "b"};
  }
  return {"a", "b"};
}

}  // namespace

void Tracer::require_tracks(int n) {
  if (n > static_cast<int>(tracks_.size())) {
    tracks_.resize(static_cast<std::size_t>(n));
  }
}

void Tracer::name_track(int track, std::string name) {
  require_tracks(track + 1);
  tracks_[static_cast<std::size_t>(track)].name = std::move(name);
}

SpanRef Tracer::record(int track, SpanKind kind, const char* name,
                       sim::SimTime begin, sim::SimTime end,
                       std::uint64_t arg_a, std::uint64_t arg_b) {
  if (track < 0 || track >= static_cast<int>(tracks_.size())) {
    return SpanRef{};
  }
  Track& t = tracks_[static_cast<std::size_t>(track)];
  Span s;
  s.name = name;
  s.begin = begin;
  s.end = end;
  s.arg_a = arg_a;
  s.arg_b = arg_b;
  s.seq = t.seq++;
  s.track = track;
  s.kind = kind;
  ++recorded_;
  if (t.ring.size() < cap_) {
    t.ring.push_back(s);
  } else {
    t.ring[t.next] = s;
    t.next = (t.next + 1) % cap_;
    ++t.dropped;
  }
  return SpanRef{s.track, s.seq};
}

void Tracer::link(SpanRef from, SpanRef to) {
  if (!from.valid() || !to.valid()) return;
  if (to.track >= static_cast<int>(tracks_.size())) return;
  tracks_[static_cast<std::size_t>(to.track)].links.push_back(
      SpanLink{from, to});
}

SpanRef Tracer::last_ref(int track) const {
  if (track < 0 || track >= static_cast<int>(tracks_.size())) {
    return SpanRef{};
  }
  const Track& t = tracks_[static_cast<std::size_t>(track)];
  if (t.seq == 0) return SpanRef{};
  return SpanRef{track, t.seq - 1};
}

std::vector<SpanLink> Tracer::links() const {
  std::vector<SpanLink> out;
  std::size_t total = 0;
  for (const Track& t : tracks_) total += t.links.size();
  out.reserve(total);
  for (const Track& t : tracks_) {
    out.insert(out.end(), t.links.begin(), t.links.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanLink& a, const SpanLink& b) {
    if (a.to.track != b.to.track) return a.to.track < b.to.track;
    if (a.to.seq != b.to.seq) return a.to.seq < b.to.seq;
    if (a.from.track != b.from.track) return a.from.track < b.from.track;
    return a.from.seq < b.from.seq;
  });
  return out;
}

std::vector<Span> Tracer::sorted_spans() const {
  std::vector<Span> out;
  std::size_t total = 0;
  for (const Track& t : tracks_) total += t.ring.size();
  out.reserve(total);
  for (const Track& t : tracks_) {
    out.insert(out.end(), t.ring.begin(), t.ring.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.track != b.track) return a.track < b.track;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.seq < b.seq;
  });
  return out;
}

sim::SimTime Tracer::kind_sum(int track, SpanKind kind) const {
  sim::SimTime sum;
  if (track < 0 || track >= static_cast<int>(tracks_.size())) return sum;
  for (const Span& s : tracks_[static_cast<std::size_t>(track)].ring) {
    if (s.kind == kind) sum += s.end - s.begin;
  }
  return sum;
}

sim::SimTime Tracer::comm_sum(int track) const {
  return kind_sum(track, SpanKind::kExtract) +
         kind_sum(track, SpanKind::kPcie) + kind_sum(track, SpanKind::kApply);
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t d = 0;
  for (const Track& t : tracks_) d += t.dropped;
  return d;
}

void Tracer::clear() {
  for (Track& t : tracks_) {
    t.ring.clear();
    t.links.clear();
    t.next = 0;
    t.seq = 0;
    t.dropped = 0;
  }
  recorded_ = 0;
}

std::string Tracer::chrome_trace_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("clock", "simulated");
  w.kv("recorded", recorded_);
  w.kv("dropped_spans", dropped());
  w.end_object();
  w.key("traceEvents").begin_array();

  // Process + thread metadata so Perfetto labels the tracks.
  w.begin_object();
  w.kv("ph", "M").kv("pid", 0).kv("tid", 0).kv("name", "process_name");
  w.key("args").begin_object().kv("name", "scalegraph-sim").end_object();
  w.end_object();
  for (int t = 0; t < num_tracks(); ++t) {
    const std::string& name = tracks_[static_cast<std::size_t>(t)].name;
    w.begin_object();
    w.kv("ph", "M").kv("pid", 0).kv("tid", t).kv("name", "thread_name");
    w.key("args").begin_object();
    w.kv("name", name.empty() ? "track " + std::to_string(t) : name);
    w.end_object();
    w.end_object();
    // sort_index keeps tracks in id order rather than name order.
    w.begin_object();
    w.kv("ph", "M").kv("pid", 0).kv("tid", t).kv("name", "thread_sort_index");
    w.key("args").begin_object().kv("sort_index", t).end_object();
    w.end_object();
  }

  for (const Span& s : sorted_spans()) {
    const ArgNames an = arg_names(s.kind);
    w.begin_object();
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", s.track);
    w.kv("name", s.name);
    w.kv("cat", to_string(s.kind));
    w.kv("ts", s.begin.micros());
    const double dur = (s.end - s.begin).micros();
    w.kv("dur", dur < 0.0 ? 0.0 : dur);
    w.key("args").begin_object();
    w.kv(an.a, s.arg_a);
    w.kv(an.b, s.arg_b);
    w.kv("seq", s.seq);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  // Causal edges (scalegraph extension, ignored by Perfetto). Only
  // edges with both endpoints still retained are exported, so importers
  // never see dangling refs.
  const auto retained = [this](SpanRef r) {
    if (!r.valid() || r.track >= static_cast<int>(tracks_.size())) {
      return false;
    }
    const Track& t = tracks_[static_cast<std::size_t>(r.track)];
    return r.seq < t.seq && r.seq >= t.seq - t.ring.size();
  };
  w.key("sgLinks").begin_array();
  for (const SpanLink& l : links()) {
    if (!retained(l.from) || !retained(l.to)) continue;
    w.begin_object();
    w.kv("fromTid", l.from.track);
    w.kv("fromSeq", l.from.seq);
    w.kv("toTid", l.to.track);
    w.kv("toSeq", l.to.seq);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write_chrome_trace(const std::filesystem::path& path) const {
  if (dropped() > 0) {
    std::fprintf(stderr,
                 "obs: warning: %llu span(s) dropped (per-track cap %zu); "
                 "trace %s will not reconcile with RunStats\n",
                 static_cast<unsigned long long>(dropped()), cap_,
                 path.string().c_str());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = chrome_trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  return out.good();
}

}  // namespace sg::obs
