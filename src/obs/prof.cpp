#include "obs/prof.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

namespace sg::obs {

/// Per-(profiler, thread) accumulator. Only its owning thread writes
/// it; the profiler reads it under mu_ at snapshot time, which the
/// contract restricts to quiesced moments.
struct ThreadTable {
  struct NodeSlot {
    const char* name = nullptr;  // static storage (string literal)
    std::uint32_t parent = 0;    // index into nodes; 0 = root sentinel
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };

  std::vector<NodeSlot> nodes{NodeSlot{}};  // nodes[0] = root sentinel
  std::uint32_t current = 0;
  std::uint64_t scope_count = 0;

  std::uint32_t find_or_add(std::uint32_t parent, const char* name) {
    // Linear scan: instrumented sites number in the dozens, and the
    // common case is re-entering a node that already exists.
    for (std::uint32_t i = 1; i < nodes.size(); ++i) {
      if (nodes[i].parent == parent &&
          (nodes[i].name == name ||
           std::strcmp(nodes[i].name, name) == 0)) {
        return i;
      }
    }
    NodeSlot slot;
    slot.name = name;
    slot.parent = parent;
    nodes.push_back(slot);
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }
};

namespace {

std::atomic<std::uint64_t> g_next_profiler_id{1};

/// Thread-local cache from profiler id to that profiler's table for
/// this thread. Ids are never reused, so a stale entry (profiler
/// destroyed) simply never matches again.
struct TableCache {
  std::vector<std::pair<std::uint64_t, ThreadTable*>> entries;
  ThreadTable* find(std::uint64_t id) const {
    for (const auto& [eid, table] : entries)
      if (eid == id) return table;
    return nullptr;
  }
};

thread_local TableCache t_tables;

}  // namespace

Profiler::Profiler() : id_(g_next_profiler_id.fetch_add(1)) {}
Profiler::~Profiler() = default;

ThreadTable& Profiler::table_for_current_thread() {
  if (ThreadTable* t = t_tables.find(id_)) return *t;
  auto owned = std::make_unique<ThreadTable>();
  ThreadTable* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tables_.push_back(std::move(owned));
  }
  t_tables.entries.emplace_back(id_, raw);
  return *raw;
}

Profiler::Scope Profiler::scope(const char* name) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return Scope();
  ThreadTable& t = table_for_current_thread();
  const std::uint32_t node = t.find_or_add(t.current, name);
  const std::uint32_t saved = t.current;
  t.current = node;
  return Scope(&t, node, saved, std::chrono::steady_clock::now());
}

void Profiler::leave(ThreadTable& t, std::uint32_t node, std::uint32_t saved,
                     std::chrono::steady_clock::duration elapsed) noexcept {
  auto& slot = t.nodes[node];
  slot.calls += 1;
  slot.total_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  t.current = saved;
  t.scope_count += 1;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& t : tables_) {
    t->nodes.assign(1, ThreadTable::NodeSlot{});
    t->current = 0;
    t->scope_count = 0;
  }
}

Profiler::Snapshot Profiler::snapshot() const {
  Snapshot snap;
  snap.per_scope_overhead_ns = calibrated_scope_overhead_ns();

  // Merge the per-thread tables into one tree keyed by path: nodes
  // with the same (merged parent, name) across threads accumulate.
  struct Merged {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::map<std::string, std::size_t> children;  // name -> merged index
  };
  std::vector<Merged> merged(1);  // [0] = root

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& table : tables_) {
    snap.scopes += table->scope_count;
    // Thread nodes are appended parent-first (a child is only created
    // while its parent is `current`), so one forward pass can map
    // every thread node to its merged counterpart.
    std::vector<std::size_t> to_merged(table->nodes.size(), 0);
    for (std::uint32_t i = 1; i < table->nodes.size(); ++i) {
      const auto& n = table->nodes[i];
      const std::size_t parent = to_merged[n.parent];
      auto [it, inserted] =
          merged[parent].children.emplace(n.name, merged.size());
      if (inserted) {
        merged.push_back(Merged{});
        merged.back().name = n.name;
      }
      const std::size_t m = it->second;
      merged[m].calls += n.calls;
      merged[m].total_ns += n.total_ns;
      to_merged[i] = m;
    }
  }

  // Materialize the tree; std::map iteration gives name-sorted
  // children, which keeps the serialized profile stable.
  struct Builder {
    const std::vector<Merged>& merged;
    Node build(std::size_t i) const {
      Node out;
      out.name = merged[i].name;
      out.calls = merged[i].calls;
      out.total_ns = merged[i].total_ns;
      out.children.reserve(merged[i].children.size());
      for (const auto& [name, child] : merged[i].children)
        out.children.push_back(build(child));
      return out;
    }
  };
  const Builder builder{merged};
  snap.roots.reserve(merged[0].children.size());
  for (const auto& [name, child] : merged[0].children)
    snap.roots.push_back(builder.build(child));
  return snap;
}

namespace {

void write_node(JsonWriter& w, const Profiler::Node& n) {
  w.begin_object();
  w.kv("name", n.name);
  w.kv("calls", n.calls);
  w.kv("total_ms", static_cast<double>(n.total_ns) / 1e6);
  w.key("children").begin_array();
  for (const auto& c : n.children) write_node(w, c);
  w.end_array();
  w.end_object();
}

}  // namespace

void Profiler::write_json(JsonWriter& w) const {
  const Snapshot snap = snapshot();
  w.begin_object();
  w.kv("sg_host_time_schema", kHostTimeSchemaVersion);
  w.kv("nondeterministic", true);
  w.kv("scopes", snap.scopes);
  w.kv("per_scope_overhead_ns", snap.per_scope_overhead_ns);
  w.kv("self_overhead_ms", snap.self_overhead_ms());
  w.key("tree").begin_array();
  for (const auto& root : snap.roots) write_node(w, root);
  w.end_array();
  w.end_object();
}

double Profiler::calibrated_scope_overhead_ns() {
  // One-shot calibration: time a burst of empty enabled scopes on a
  // throwaway profiler. Coarse by design — it feeds an overhead
  // *estimate* in a nondeterministic-marked section, not a metric.
  static const double per_scope_ns = [] {
    Profiler p;
    p.set_enabled(true);
    constexpr int kIters = 4096;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      auto s = p.scope("calibrate");
      (void)s;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    return static_cast<double>(ns) / kIters;
  }();
  return per_scope_ns;
}

Profiler& Profiler::global() {
  static Profiler prof;
  return prof;
}

}  // namespace sg::obs
