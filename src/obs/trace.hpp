#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim_time.hpp"

namespace sg::obs {

/// Span taxonomy for the simulated timeline. Every accumulation into
/// RunStats' per-device breakdown has a matching span kind so a trace's
/// per-track sums reconcile with the run's reported totals:
///   compute_time[d]     == Σ kKernel spans on track d
///   wait_time[d]        == Σ kWait spans on track d
///   device_comm_time[d] == Σ (kExtract + kPcie + kApply) spans on track d
/// kNet spans live on separate network tracks (host-to-host hops are
/// not part of any per-device total); kCheckpoint/kRehome live on the
/// runtime track (their cost is in FaultStats, not the device arrays).
enum class SpanKind : std::uint8_t {
  kKernel,      ///< compute kernel (or idle-poll churn)
  kExtract,     ///< GPU-side update extraction before a send
  kPcie,        ///< device<->host transfer (downlink or uplink)
  kNet,         ///< host-to-host network hop
  kApply,       ///< device-side application of a received payload
  kWait,        ///< blocked: barrier, message arrival, park, throttle
  kCheckpoint,  ///< snapshot write or rollback restore
  kRehome,      ///< eviction recovery: re-homing + layout rebuild
  kOther,
};

[[nodiscard]] const char* to_string(SpanKind k);
/// Inverse of to_string (exact match); kOther for unknown names.
[[nodiscard]] SpanKind span_kind_from_string(std::string_view s);

/// Stable handle to a recorded span: (track, per-track sequence number).
/// Returned by Tracer::record so instrumentation sites can connect
/// spans causally with Tracer::link without holding Span pointers
/// (ring-buffer slots move). A default-constructed ref is invalid and
/// ignored by link().
struct SpanRef {
  std::int32_t track = -1;
  std::uint64_t seq = 0;

  [[nodiscard]] constexpr bool valid() const { return track >= 0; }
  friend constexpr bool operator==(SpanRef, SpanRef) = default;
};

/// Causal edge between two spans: `from` must complete before `to` can
/// finish (kernel -> extract -> PCIe -> NIC hop -> apply ->
/// barrier-release). Consumed by the critical-path analyzer.
struct SpanLink {
  SpanRef from;
  SpanRef to;
};

/// One closed span on the simulated timeline. `name` must be a string
/// with static storage duration (span recording never allocates).
struct Span {
  const char* name = "";
  sim::SimTime begin;
  sim::SimTime end;
  std::uint64_t arg_a = 0;  ///< kind-specific (bytes, edges, ...)
  std::uint64_t arg_b = 0;  ///< kind-specific (peer, round, ...)
  std::uint64_t seq = 0;    ///< per-track record order (stable sort key)
  std::int32_t track = 0;
  SpanKind kind = SpanKind::kOther;
};

/// Records named spans on per-track ring buffers and exports Chrome
/// trace-event JSON (load in Perfetto / chrome://tracing).
///
/// Concurrency contract: track creation (`require_tracks`,
/// `name_track`) is single-threaded setup; `record` may then be called
/// concurrently for *different* tracks (the executor's parallel BSP
/// phases each write only their own device's track). Two concurrent
/// records to the same track race — don't do that.
///
/// Each track keeps at most `per_track_cap` spans; when full, the
/// oldest span is overwritten and counted in `dropped()` (a trace with
/// drops no longer reconciles with RunStats — raise the cap).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCap = 1 << 16;

  explicit Tracer(std::size_t per_track_cap = kDefaultCap)
      : cap_(per_track_cap == 0 ? 1 : per_track_cap) {}

  /// Grows the track table to at least `n` tracks (never shrinks).
  void require_tracks(int n);
  void name_track(int track, std::string name);

  SpanRef record(int track, SpanKind kind, const char* name,
                 sim::SimTime begin, sim::SimTime end, std::uint64_t arg_a = 0,
                 std::uint64_t arg_b = 0);

  /// Records a causal edge `from` -> `to`. Invalid refs are ignored, so
  /// callers can link unconditionally. Thread-safety follows the span
  /// rule through the *destination*: the link is stored on `to`'s track,
  /// so the thread that recorded `to` may link into it concurrently with
  /// other tracks' recording.
  void link(SpanRef from, SpanRef to);

  /// Ref of the most recently recorded span on `track` (invalid when the
  /// track has none).
  [[nodiscard]] SpanRef last_ref(int track) const;

  /// All causal edges, ordered by (to.track, to.seq, from.track,
  /// from.seq). Edges whose endpoints were overwritten in a ring are
  /// still returned — consumers resolve refs against retained spans.
  [[nodiscard]] std::vector<SpanLink> links() const;

  [[nodiscard]] int num_tracks() const {
    return static_cast<int>(tracks_.size());
  }
  [[nodiscard]] const std::string& track_name(int track) const {
    return tracks_[static_cast<std::size_t>(track)].name;
  }
  [[nodiscard]] std::size_t per_track_cap() const { return cap_; }

  /// Spans currently retained, ordered by (track, begin, seq).
  [[nodiscard]] std::vector<Span> sorted_spans() const;

  /// Total duration of retained spans of `kind` on `track` — the
  /// reconciliation primitive (see SpanKind).
  [[nodiscard]] sim::SimTime kind_sum(int track, SpanKind kind) const;
  /// Σ extract + pcie + apply on `track` (the device_comm_time share).
  [[nodiscard]] sim::SimTime comm_sum(int track) const;

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

  /// Chrome trace-event JSON ("X" complete events; ts/dur in simulated
  /// microseconds; one tid per track with thread_name metadata; causal
  /// edges under a top-level "sgLinks" array; drop accounting under
  /// otherData.dropped_spans). Deterministic: identical recorded spans
  /// give identical bytes.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure. Warns
  /// once on stderr when spans were dropped (the trace no longer
  /// reconciles with RunStats — raise the cap).
  bool write_chrome_trace(const std::filesystem::path& path) const;

 private:
  struct Track {
    std::string name;
    std::vector<Span> ring;
    std::vector<SpanLink> links;  // edges whose `to` span lives here
    std::size_t next = 0;      // overwrite cursor once ring is full
    std::uint64_t seq = 0;     // records ever made on this track
    std::uint64_t dropped = 0;
  };

  std::size_t cap_;
  std::vector<Track> tracks_;
  std::uint64_t recorded_ = 0;
};

/// Null-sink handle threaded through RoundCtx (and usable anywhere a
/// layer wants to emit spans without owning the tracer): holds a
/// possibly-null Tracer plus the track to write to, and makes every
/// operation a no-op when tracing is disabled.
class Scope {
 public:
  Scope() = default;
  Scope(Tracer* tracer, int track) : tracer_(tracer), track_(track) {}

  [[nodiscard]] bool enabled() const { return tracer_ != nullptr; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }
  [[nodiscard]] int track() const { return track_; }

  SpanRef span(SpanKind kind, const char* name, sim::SimTime begin,
               sim::SimTime end, std::uint64_t arg_a = 0,
               std::uint64_t arg_b = 0) const {
    if (tracer_ != nullptr) {
      return tracer_->record(track_, kind, name, begin, end, arg_a, arg_b);
    }
    return SpanRef{};
  }

 private:
  Tracer* tracer_ = nullptr;
  int track_ = -1;
};

}  // namespace sg::obs
