#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/zscore.hpp"

namespace sg::obs {

const char* to_string(CpCategory c) {
  switch (c) {
    case CpCategory::kCompute: return "compute";
    case CpCategory::kDeviceHost: return "device_host";
    case CpCategory::kInterHost: return "inter_host";
    case CpCategory::kWait: return "wait";
    case CpCategory::kRuntime: return "runtime";
    case CpCategory::kIdle: return "idle";
  }
  return "idle";
}

CpCategory categorize(SpanKind kind, std::string_view name) {
  switch (kind) {
    case SpanKind::kKernel: return CpCategory::kCompute;
    case SpanKind::kExtract:
    case SpanKind::kPcie:
    case SpanKind::kApply: return CpCategory::kDeviceHost;
    case SpanKind::kNet:
      return name.ends_with(".staging") ? CpCategory::kDeviceHost
                                        : CpCategory::kInterHost;
    case SpanKind::kWait: return CpCategory::kWait;
    case SpanKind::kCheckpoint:
    case SpanKind::kRehome:
    case SpanKind::kOther: return CpCategory::kRuntime;
  }
  return CpCategory::kRuntime;
}

std::string TraceView::track_label(std::int32_t track) const {
  if (track < 0) return "(none)";
  const auto t = static_cast<std::size_t>(track);
  if (t < track_names.size() && !track_names[t].empty()) {
    return track_names[t];
  }
  return "track " + std::to_string(track);
}

TraceView TraceView::from_tracer(const Tracer& tracer) {
  TraceView v;
  const std::vector<Span> spans = tracer.sorted_spans();
  v.spans.reserve(spans.size());
  for (const Span& s : spans) {
    CpSpan c;
    c.name = s.name;
    c.begin = s.begin;
    c.end = s.end;
    c.arg_a = s.arg_a;
    c.arg_b = s.arg_b;
    c.seq = s.seq;
    c.track = s.track;
    c.kind = s.kind;
    v.spans.push_back(std::move(c));
  }
  v.links = tracer.links();
  v.track_names.reserve(static_cast<std::size_t>(tracer.num_tracks()));
  for (int t = 0; t < tracer.num_tracks(); ++t) {
    v.track_names.push_back(tracer.track_name(t));
  }
  v.dropped = tracer.dropped();
  return v;
}

namespace {

[[noreturn]] void schema_error(const std::string& what) {
  throw std::runtime_error("trace schema: " + what);
}

const JsonValue& require(const JsonValue& obj, const char* key,
                         JsonValue::Kind kind, const char* where) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.kind != kind) {
    schema_error(std::string(where) + " is missing \"" + key + "\"");
  }
  return it->second;
}

}  // namespace

TraceView TraceView::from_chrome_trace(const JsonValue& doc) {
  if (!doc.is_object()) schema_error("document is not an object");
  const auto events = doc.object.find("traceEvents");
  if (events == doc.object.end() || !events->second.is_array()) {
    schema_error("no traceEvents array (not a scalegraph Chrome trace)");
  }
  TraceView v;
  if (const JsonValue* d = doc.find("otherData.dropped_spans")) {
    v.dropped = static_cast<std::uint64_t>(d->num_or(0.0));
  }
  for (const JsonValue& ev : events->second.array) {
    if (!ev.is_object()) schema_error("traceEvents entry is not an object");
    const std::string& ph =
        require(ev, "ph", JsonValue::Kind::kString, "event").string;
    const auto tid =
        static_cast<std::int32_t>(ev.find("tid") ? ev.find("tid")->num_or(0.0)
                                                 : 0.0);
    if (ph == "M") {
      if (ev.find("name") != nullptr &&
          ev.find("name")->str_or("") == "thread_name") {
        const std::string name =
            ev.find("args.name") ? ev.find("args.name")->str_or("") : "";
        if (tid >= 0) {
          if (v.track_names.size() <= static_cast<std::size_t>(tid)) {
            v.track_names.resize(static_cast<std::size_t>(tid) + 1);
          }
          v.track_names[static_cast<std::size_t>(tid)] = name;
        }
      }
      continue;
    }
    if (ph != "X") continue;
    CpSpan s;
    s.track = tid;
    s.name = require(ev, "name", JsonValue::Kind::kString, "span").string;
    s.kind = span_kind_from_string(
        require(ev, "cat", JsonValue::Kind::kString, "span").string);
    const double ts =
        require(ev, "ts", JsonValue::Kind::kNumber, "span").number;
    const double dur =
        require(ev, "dur", JsonValue::Kind::kNumber, "span").number;
    s.begin = sim::SimTime::micros(ts);
    s.end = sim::SimTime::micros(ts + dur);
    const JsonValue* seq = ev.find("args.seq");
    if (seq == nullptr || seq->kind != JsonValue::Kind::kNumber) {
      schema_error("span \"" + s.name +
                   "\" has no args.seq (trace from an older scalegraph?)");
    }
    s.seq = static_cast<std::uint64_t>(seq->number);
    // The two kind-specific args (bytes/peer, edges/round, ...) are the
    // remaining numeric members of args; map order is alphabetical, and
    // the writer emits a-name before b-name only for some kinds, so
    // recover them by name.
    if (const JsonValue* args = ev.find("args")) {
      std::size_t slot = 0;
      for (const auto& [k, val] : args->object) {
        if (k == "seq" || val.kind != JsonValue::Kind::kNumber) continue;
        // Alphabetical order is stable; which generic arg is which only
        // matters for round labels, recovered below by kind.
        (slot++ == 0 ? s.arg_a : s.arg_b) =
            static_cast<std::uint64_t>(val.number);
      }
      // Round-bearing kinds store the round in arg_b; its exported name
      // ("round") sorts after the a-name for kernel ("edges") and
      // checkpoint ("bytes"), so the positional recovery above is
      // already correct. Assert the invariant instead of guessing.
      if (s.kind == SpanKind::kKernel || s.kind == SpanKind::kCheckpoint ||
          s.kind == SpanKind::kWait) {
        if (const JsonValue* round = args->find("round")) {
          s.arg_b = static_cast<std::uint64_t>(round->num_or(0.0));
        }
      }
    }
    v.spans.push_back(std::move(s));
  }
  if (const JsonValue* links = doc.find("sgLinks")) {
    if (!links->is_array()) schema_error("sgLinks is not an array");
    for (const JsonValue& l : links->array) {
      if (!l.is_object()) schema_error("sgLinks entry is not an object");
      SpanLink e;
      e.from.track = static_cast<std::int32_t>(
          require(l, "fromTid", JsonValue::Kind::kNumber, "link").number);
      e.from.seq = static_cast<std::uint64_t>(
          require(l, "fromSeq", JsonValue::Kind::kNumber, "link").number);
      e.to.track = static_cast<std::int32_t>(
          require(l, "toTid", JsonValue::Kind::kNumber, "link").number);
      e.to.seq = static_cast<std::uint64_t>(
          require(l, "toSeq", JsonValue::Kind::kNumber, "link").number);
      v.links.push_back(e);
    }
  }
  std::sort(v.spans.begin(), v.spans.end(),
            [](const CpSpan& a, const CpSpan& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.seq < b.seq;
            });
  return v;
}

// ---- critical-path walk --------------------------------------------------

namespace {

/// Reimported traces round-trip through decimal microseconds, so allow
/// a nanosecond of slop in "ends before" comparisons.
constexpr sim::SimTime kEps{1e-9};

struct WalkIndex {
  const TraceView* view = nullptr;
  // spans grouped per track (already contiguous in view->spans).
  struct TrackRange {
    std::size_t first = 0;
    std::size_t count = 0;
    std::vector<std::size_t> by_end;  // span indices sorted by (end, seq)
  };
  std::map<std::int32_t, TrackRange> tracks;
  std::map<std::pair<std::int32_t, std::uint64_t>, std::size_t> by_ref;
  std::vector<std::vector<std::size_t>> parents;  // explicit link edges

  explicit WalkIndex(const TraceView& v) : view(&v) {
    const auto& spans = v.spans;
    parents.resize(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const CpSpan& s = spans[i];
      auto& tr = tracks[s.track];
      if (tr.count == 0) tr.first = i;
      ++tr.count;
      by_ref.emplace(std::make_pair(s.track, s.seq), i);
    }
    for (auto& [track, tr] : tracks) {
      tr.by_end.reserve(tr.count);
      for (std::size_t i = tr.first; i < tr.first + tr.count; ++i) {
        tr.by_end.push_back(i);
      }
      std::sort(tr.by_end.begin(), tr.by_end.end(),
                [&spans](std::size_t a, std::size_t b) {
                  if (spans[a].end != spans[b].end) {
                    return spans[a].end < spans[b].end;
                  }
                  return spans[a].seq < spans[b].seq;
                });
    }
    for (const SpanLink& l : v.links) {
      const auto from = by_ref.find({l.from.track, l.from.seq});
      const auto to = by_ref.find({l.to.track, l.to.seq});
      if (from == by_ref.end() || to == by_ref.end()) continue;
      parents[to->second].push_back(from->second);
    }
  }

  /// Latest-ending unvisited span on `track` with end <= at + eps,
  /// excluding `self`. kNoSpan when none.
  [[nodiscard]] std::size_t same_track_pred(
      std::int32_t track, sim::SimTime at, std::size_t self,
      const std::vector<std::uint8_t>& visited) const {
    const auto it = tracks.find(track);
    if (it == tracks.end()) return CpSegment::kNoSpan;
    const auto& by_end = it->second.by_end;
    const auto& spans = view->spans;
    auto pos = std::upper_bound(by_end.begin(), by_end.end(), at + kEps,
                                [&spans](sim::SimTime t, std::size_t i) {
                                  return t < spans[i].end;
                                });
    while (pos != by_end.begin()) {
      --pos;
      const std::size_t i = *pos;
      if (i != self && visited[i] == 0) return i;
    }
    return CpSegment::kNoSpan;
  }
};

}  // namespace

CpAnalysis analyze_critical_path(const TraceView& view,
                                 const ExplainContext* ctx) {
  CpAnalysis a;
  a.dropped = view.dropped;
  const auto& spans = view.spans;
  if (spans.empty()) {
    a.hints.emplace_back("trace contains no spans — nothing to attribute");
    return a;
  }

  // Start at the globally latest-ending span (tie: lowest track, seq).
  std::size_t start = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].end > spans[start].end) start = i;
  }
  a.makespan = spans[start].end;

  const WalkIndex index(view);
  std::vector<std::uint8_t> visited(spans.size(), 0);

  std::vector<CpSegment> segs;  // built backward, reversed at the end
  std::uint64_t round_ctx = 0;
  std::map<std::uint64_t, CpRoundRow> rounds;
  std::map<std::int32_t, sim::SimTime> on_path;

  const auto attribute = [&](std::size_t span_idx, sim::SimTime lo,
                             sim::SimTime hi, CpCategory cat,
                             std::int32_t track) {
    if (!(hi > lo)) return;
    CpSegment seg;
    seg.span = span_idx;
    seg.begin = lo;
    seg.end = hi;
    seg.category = cat;
    seg.track = track;
    seg.round = round_ctx;
    segs.push_back(seg);
    a.by_category[static_cast<std::size_t>(cat)] += hi - lo;
    if (track >= 0) on_path[track] += hi - lo;
    CpRoundRow& row = rounds[round_ctx];
    row.round = round_ctx;
    row.length += hi - lo;
    row.by_category[static_cast<std::size_t>(cat)] += hi - lo;
  };

  std::size_t cur = start;
  sim::SimTime cover = a.makespan;  // lowest point already attributed
  for (std::size_t steps = 0; steps <= spans.size(); ++steps) {
    const CpSpan& s = spans[cur];
    visited[cur] = 1;
    // Round context: a round's critical cost is its kernel plus the
    // communication and waits that gated it, so the label applies to
    // this span and everything earlier until the previous marker.
    if (s.kind == SpanKind::kKernel ||
        (s.kind == SpanKind::kWait && s.name == "wait.barrier") ||
        s.kind == SpanKind::kCheckpoint) {
      if (s.arg_b > 0) round_ctx = s.arg_b;
    }

    // Binding predecessor: the latest-ending causal parent, from the
    // explicit link edges plus the same-track predecessor.
    std::size_t parent = CpSegment::kNoSpan;
    const auto consider = [&](std::size_t p) {
      if (p == CpSegment::kNoSpan || visited[p] != 0) return;
      if (parent == CpSegment::kNoSpan) {
        parent = p;
        return;
      }
      const CpSpan& a_ = spans[p];
      const CpSpan& b_ = spans[parent];
      if (a_.end != b_.end) {
        if (a_.end > b_.end) parent = p;
        return;
      }
      if (a_.track != b_.track ? a_.track < b_.track : a_.seq < b_.seq) {
        parent = p;
      }
    };
    for (const std::size_t p : index.parents[cur]) consider(p);
    consider(index.same_track_pred(s.track, s.begin, cur, visited));

    const sim::SimTime pend =
        parent == CpSegment::kNoSpan ? sim::SimTime::zero()
                                     : spans[parent].end;
    const sim::SimTime lo = sim::min(cover, sim::max(s.begin, pend));
    attribute(cur, lo, cover, categorize(s.kind, s.name), s.track);
    cover = lo;
    if (parent == CpSegment::kNoSpan) {
      // Root of the chain: anything before it is untracked idle time.
      attribute(CpSegment::kNoSpan, sim::SimTime::zero(), cover,
                CpCategory::kIdle, s.track);
      cover = sim::SimTime::zero();
      break;
    }
    if (pend < cover) {
      // Gap between the parent's completion and this span: time covered
      // by no span on the chain.
      attribute(CpSegment::kNoSpan, pend, cover, CpCategory::kIdle, s.track);
      cover = pend;
    }
    cur = parent;
  }

  std::reverse(segs.begin(), segs.end());
  a.segments = std::move(segs);
  a.cp_length = a.makespan - cover;  // cover == 0 on a completed walk

  // Per-track blame (every track with spans appears, even off-path).
  for (const auto& [track, range] : index.tracks) {
    (void)range;
    CpTrackBlame b;
    b.track = track;
    b.name = view.track_label(track);
    const auto it = on_path.find(track);
    b.on_path = it != on_path.end() ? it->second : sim::SimTime::zero();
    b.blame_pct = a.cp_length.seconds() > 0.0
                      ? b.on_path.seconds() / a.cp_length.seconds() * 100.0
                      : 0.0;
    b.slack = a.cp_length - b.on_path;
    a.tracks.push_back(std::move(b));
  }
  std::sort(a.tracks.begin(), a.tracks.end(),
            [](const CpTrackBlame& x, const CpTrackBlame& y) {
              if (x.on_path != y.on_path) return x.on_path > y.on_path;
              return x.track < y.track;
            });

  for (auto& [r, row] : rounds) {
    (void)r;
    a.rounds.push_back(row);
  }

  // Straggler ranking: z-score of per-track mean kernel time.
  {
    struct KernelStat {
      std::int32_t track;
      std::uint64_t n = 0;
      double sum = 0.0;
    };
    std::vector<KernelStat> ks;
    for (const auto& [track, range] : index.tracks) {
      KernelStat k{track, 0, 0.0};
      for (std::size_t i = range.first; i < range.first + range.count; ++i) {
        if (spans[i].kind != SpanKind::kKernel) continue;
        ++k.n;
        k.sum += spans[i].duration().seconds();
      }
      if (k.n > 0) ks.push_back(k);
    }
    if (ks.size() >= 2) {
      std::vector<double> means;
      means.reserve(ks.size());
      for (const KernelStat& k : ks) {
        means.push_back(k.sum / static_cast<double>(k.n));
      }
      const std::vector<double> zs = population_zscores(means);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        const KernelStat& k = ks[i];
        CpStraggler st;
        st.track = k.track;
        st.name = view.track_label(k.track);
        st.kernels = k.n;
        st.mean_kernel_s = means[i];
        st.z = zs[i];
        a.stragglers.push_back(std::move(st));
      }
      std::sort(a.stragglers.begin(), a.stragglers.end(),
                [](const CpStraggler& x, const CpStraggler& y) {
                  if (x.z != y.z) return x.z > y.z;
                  return x.track < y.track;
                });
    }
  }

  // ---- rule-based hints (deterministic order and wording) ----
  char buf[256];
  const auto hintf = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    a.hints.emplace_back(buf);
  };
  if (a.dropped > 0) {
    hintf("warning: %llu span(s) were dropped — attribution is incomplete; "
          "raise the tracer per-track cap",
          static_cast<unsigned long long>(a.dropped));
  }

  const double compute = a.category_pct(CpCategory::kCompute);
  const double devhost = a.category_pct(CpCategory::kDeviceHost);
  const double interhost = a.category_pct(CpCategory::kInterHost);
  const double wait = a.category_pct(CpCategory::kWait);
  CpCategory dom = CpCategory::kCompute;
  double dom_pct = compute;
  const auto contend = [&](CpCategory c, double pct) {
    if (pct > dom_pct) {
      dom = c;
      dom_pct = pct;
    }
  };
  contend(CpCategory::kDeviceHost, devhost);
  contend(CpCategory::kInterHost, interhost);
  contend(CpCategory::kWait, wait);

  switch (dom) {
    case CpCategory::kInterHost: {
      hintf("inter-host network dominates the critical path (%.1f%%) — "
            "cut cross-host traffic: update-only sync (UO) elides unchanged "
            "values, CVC partitioning bounds sync partners at scale",
            interhost);
      if (ctx != nullptr && ctx->net_fixed_cost_s >= 0.0) {
        // Mean on-path inter-host segment vs the per-hop fixed cost.
        double total = 0.0;
        std::uint64_t n = 0;
        for (const CpSegment& seg : a.segments) {
          if (seg.category != CpCategory::kInterHost) continue;
          total += seg.duration().seconds();
          ++n;
        }
        const double mean_hop = n > 0 ? total / static_cast<double>(n) : 0.0;
        if (mean_hop > 0.0 && ctx->net_fixed_cost_s >= 0.5 * mean_hop) {
          hintf("per-message fixed cost (%.2e s) is >=50%% of the mean "
                "on-path hop (%.2e s) — latency-bound: batch or aggregate "
                "small messages",
                ctx->net_fixed_cost_s, mean_hop);
        } else if (mean_hop > 0.0) {
          hintf("mean on-path hop (%.2e s) dwarfs the per-message fixed "
                "cost (%.2e s) — bandwidth-bound: reduce volume (UO, CVC, "
                "smaller value types)",
                mean_hop, ctx->net_fixed_cost_s);
        }
      }
      break;
    }
    case CpCategory::kDeviceHost:
      hintf("device-host transfers dominate the critical path (%.1f%%) — "
            "enable GPUDirect and communication overlap, or shrink payloads "
            "with update-only sync",
            devhost);
      break;
    case CpCategory::kWait: {
      hintf("waiting dominates the critical path (%.1f%%) — devices are "
            "blocked on messages or barriers more than they work",
            wait);
      break;
    }
    case CpCategory::kCompute:
    default:
      hintf("compute dominates the critical path (%.1f%%) — communication "
            "is overlapped or cheap at this scale; kernel-side balance and "
            "throughput are the levers",
            compute);
      break;
  }

  if (!a.stragglers.empty() && a.stragglers.front().z >= 2.0) {
    const CpStraggler& s = a.stragglers.front();
    hintf("straggler: %s mean kernel time is %.1f sigma above the fleet — "
          "a dynamic balancer (ALB) or eviction policy would contain it",
          s.name.c_str(), s.z);
    if (ctx != nullptr && ctx->stats != nullptr &&
        ctx->stats->faults.straggler_suspicions > 0) {
      hintf("health detector agrees: %llu straggler suspicion(s) were "
            "raised during the run",
            static_cast<unsigned long long>(
                ctx->stats->faults.straggler_suspicions));
    }
  }
  if (ctx != nullptr && ctx->replication_factor >= 2.0) {
    hintf("replication factor %.2f: each master averages %.2f mirrors — "
          "sync volume scales with it; CVC caps partners at higher device "
          "counts",
          ctx->replication_factor, ctx->replication_factor - 1.0);
  }
  return a;
}

// ---- rendering -----------------------------------------------------------

namespace {

std::string fmt_secs(sim::SimTime t) { return format_double(t.seconds()); }

std::string fmt_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", pct);
  return buf;
}

/// Top-k on-path segments by duration (ties: earlier begin, lower
/// track). Idle segments compete too — a huge untracked gap *is* a
/// bottleneck worth surfacing.
std::vector<std::size_t> top_segments(const CpAnalysis& a, int k) {
  std::vector<std::size_t> idx(a.segments.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&a](std::size_t x, std::size_t y) {
    const CpSegment& sx = a.segments[x];
    const CpSegment& sy = a.segments[y];
    if (sx.duration() != sy.duration()) return sx.duration() > sy.duration();
    if (sx.begin != sy.begin) return sx.begin < sy.begin;
    return sx.track < sy.track;
  });
  if (idx.size() > static_cast<std::size_t>(k)) {
    idx.resize(static_cast<std::size_t>(k));
  }
  return idx;
}

std::string segment_name(const TraceView& view, const CpSegment& seg) {
  if (seg.span == CpSegment::kNoSpan) return "(idle)";
  return view.spans[seg.span].name;
}

}  // namespace

void render_explain_text(std::ostream& os, const TraceView& view,
                         const CpAnalysis& a, const ExplainOptions& opts,
                         const ExplainContext* ctx) {
  os << "== sg_explain: critical-path attribution ==\n";
  if (ctx != nullptr && !ctx->config.empty()) {
    os << "config: " << ctx->config << "\n";
  }
  os << "makespan: " << fmt_secs(a.makespan) << " s over "
     << view.track_names.size() << " track(s), " << view.spans.size()
     << " span(s), " << view.links.size() << " causal link(s)\n";
  os << "critical path: " << fmt_secs(a.cp_length) << " s in "
     << a.segments.size() << " segment(s)\n";
  if (a.dropped > 0) {
    os << "dropped spans: " << a.dropped << " (attribution incomplete)\n";
  }

  os << "\n-- breakdown (on critical path) --\n";
  for (int c = 0; c < kNumCpCategories; ++c) {
    const auto cat = static_cast<CpCategory>(c);
    os << "  " << to_string(cat) << ": "
       << fmt_secs(a.by_category[static_cast<std::size_t>(c)]) << " s ("
       << fmt_pct(a.category_pct(cat)) << "%)\n";
  }

  os << "\n-- per-track blame --\n";
  for (const CpTrackBlame& b : a.tracks) {
    if (!(b.on_path > sim::SimTime::zero())) continue;
    os << "  " << b.name << ": " << fmt_secs(b.on_path) << " s ("
       << fmt_pct(b.blame_pct) << "%), slack " << fmt_secs(b.slack) << " s\n";
  }

  os << "\n-- top " << opts.top_k << " bottleneck segments --\n";
  for (const std::size_t i : top_segments(a, opts.top_k)) {
    const CpSegment& seg = a.segments[i];
    os << "  " << segment_name(view, seg) << " ["
       << to_string(seg.category) << "] on " << view.track_label(seg.track)
       << ": " << fmt_secs(seg.duration()) << " s @ " << fmt_secs(seg.begin)
       << " s";
    if (seg.round > 0) os << " (round " << seg.round << ")";
    os << "\n";
  }

  if (!a.rounds.empty()) {
    os << "\n-- slowest rounds (critical-path share) --\n";
    std::vector<std::size_t> order(a.rounds.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&a](std::size_t x, std::size_t y) {
      if (a.rounds[x].length != a.rounds[y].length) {
        return a.rounds[x].length > a.rounds[y].length;
      }
      return a.rounds[x].round < a.rounds[y].round;
    });
    if (order.size() > static_cast<std::size_t>(opts.top_k)) {
      order.resize(static_cast<std::size_t>(opts.top_k));
    }
    for (const std::size_t i : order) {
      const CpRoundRow& r = a.rounds[i];
      os << "  round " << r.round << ": " << fmt_secs(r.length) << " s"
         << " (compute " << fmt_secs(r.by_category[0]) << ", device-host "
         << fmt_secs(r.by_category[1]) << ", inter-host "
         << fmt_secs(r.by_category[2]) << ", wait " << fmt_secs(r.by_category[3])
         << ")\n";
    }
  }

  if (!a.stragglers.empty()) {
    os << "\n-- straggler ranking (mean kernel z-score) --\n";
    for (const CpStraggler& s : a.stragglers) {
      char z[32];
      std::snprintf(z, sizeof(z), "%+.2f", s.z);
      os << "  " << s.name << ": mean " << format_double(s.mean_kernel_s)
         << " s over " << s.kernels << " kernel(s), z " << z << "\n";
    }
  }

  os << "\n-- hints --\n";
  for (const std::string& h : a.hints) os << "  * " << h << "\n";
}

std::string render_explain_json(const TraceView& view, const CpAnalysis& a,
                                const ExplainOptions& opts,
                                const ExplainContext* ctx) {
  JsonWriter w;
  w.begin_object();
  w.kv("sg_explain_schema", kExplainSchemaVersion);
  if (ctx != nullptr && !ctx->config.empty()) w.kv("config", ctx->config);
  w.kv("makespan_s", a.makespan.seconds());
  w.kv("cp_length_s", a.cp_length.seconds());
  w.kv("spans", static_cast<std::uint64_t>(view.spans.size()));
  w.kv("links", static_cast<std::uint64_t>(view.links.size()));
  w.kv("segments", static_cast<std::uint64_t>(a.segments.size()));
  w.kv("dropped_spans", a.dropped);

  w.key("breakdown").begin_object();
  for (int c = 0; c < kNumCpCategories; ++c) {
    const auto cat = static_cast<CpCategory>(c);
    w.kv(std::string(to_string(cat)) + "_s",
         a.by_category[static_cast<std::size_t>(c)].seconds());
    w.kv(std::string(to_string(cat)) + "_pct", a.category_pct(cat));
  }
  w.end_object();

  w.key("tracks").begin_array();
  for (const CpTrackBlame& b : a.tracks) {
    w.begin_object();
    w.kv("track", b.track);
    w.kv("name", b.name);
    w.kv("on_path_s", b.on_path.seconds());
    w.kv("blame_pct", b.blame_pct);
    w.kv("slack_s", b.slack.seconds());
    w.end_object();
  }
  w.end_array();

  w.key("top_segments").begin_array();
  for (const std::size_t i : top_segments(a, opts.top_k)) {
    const CpSegment& seg = a.segments[i];
    w.begin_object();
    w.kv("name", segment_name(view, seg));
    w.kv("category", to_string(seg.category));
    w.kv("track", seg.track);
    w.kv("begin_s", seg.begin.seconds());
    w.kv("duration_s", seg.duration().seconds());
    w.kv("round", seg.round);
    w.end_object();
  }
  w.end_array();

  w.key("rounds").begin_array();
  for (const CpRoundRow& r : a.rounds) {
    w.begin_object();
    w.kv("round", r.round);
    w.kv("length_s", r.length.seconds());
    for (int c = 0; c < kNumCpCategories; ++c) {
      w.kv(std::string(to_string(static_cast<CpCategory>(c))) + "_s",
           r.by_category[static_cast<std::size_t>(c)].seconds());
    }
    w.end_object();
  }
  w.end_array();

  w.key("stragglers").begin_array();
  for (const CpStraggler& s : a.stragglers) {
    w.begin_object();
    w.kv("track", s.track);
    w.kv("name", s.name);
    w.kv("kernels", s.kernels);
    w.kv("mean_kernel_s", s.mean_kernel_s);
    w.kv("z", s.z);
    w.end_object();
  }
  w.end_array();

  w.key("hints").begin_array();
  for (const std::string& h : a.hints) w.value(h);
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace sg::obs
