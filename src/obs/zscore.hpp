#pragma once

#include <cmath>
#include <vector>

namespace sg::obs {

/// Population z-scores of `values` against their own mean: the
/// straggler statistic behind sg_explain's ranking (critpath.cpp) and
/// the GrayFailureMonitor's kernel-blame signal — one definition so the
/// two always agree. Fewer than two samples, or a population sd below
/// 1e-15, yields all zeros (no fleet to stand out from).
[[nodiscard]] inline std::vector<double> population_zscores(
    const std::vector<double>& values) {
  std::vector<double> z(values.size(), 0.0);
  if (values.size() < 2) return z;
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) {
    const double d = v - mean;
    var += d * d;
  }
  const double sd = std::sqrt(var / static_cast<double>(values.size()));
  if (sd <= 1e-15) return z;
  for (std::size_t i = 0; i < values.size(); ++i) {
    z[i] = (values[i] - mean) / sd;
  }
  return z;
}

}  // namespace sg::obs
