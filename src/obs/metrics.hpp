#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sg::obs {

/// Monotone event counter. Increments are lock-free and safe from the
/// executor's parallel BSP phases; reads are racy-but-atomic (callers
/// read after the run completes).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written double (plus a CAS max helper for high-water marks such
/// as the health detector's peak φ).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void max_of(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds, plus an implicit overflow bucket. Bucket counts and the
/// running sum are atomic so observations from parallel phases are
/// safe; the bucket layout itself is fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }

  /// Folds `other`'s observations into this histogram (per-run registry
  /// aggregation across repetitions). Requires identical bucket bounds;
  /// returns false (and merges nothing) otherwise. Not atomic as a
  /// whole — merge quiesced histograms only.
  bool merge(const Histogram& other) {
    if (other.bounds_ != bounds_) return false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    const double add = other.sum();
    while (!sum_.compare_exchange_weak(cur, cur + add,
                                       std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Power-of-two upper bounds [2^lo_pow, 2^hi_pow] — the natural shape
  /// for message-size and frontier-size distributions.
  [[nodiscard]] static std::vector<double> exp2_bounds(int lo_pow,
                                                       int hi_pow) {
    std::vector<double> b;
    for (int p = lo_pow; p <= hi_pow; ++p) {
      b.push_back(static_cast<double>(1ull << p));
    }
    return b;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Typed metric registry the engine, comm, fault, and partition layers
/// register into instead of growing bespoke stat structs. Registration
/// (name lookup/insert) takes a mutex and is meant for setup paths;
/// callers cache the returned reference and hit only the atomic on the
/// hot path. References stay valid for the registry's lifetime
/// (node-based map storage).
class Registry {
 public:
  Counter& counter(const std::string& name) {
    const std::scoped_lock lock(mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    const std::scoped_lock lock(mu_);
    return gauges_[name];
  }
  /// `bounds` applies on first registration only; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bounds) {
    const std::scoped_lock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.try_emplace(name, std::move(bounds)).first->second;
  }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const {
    const std::scoped_lock lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const {
    const std::scoped_lock lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const {
    const std::scoped_lock lock(mu_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Serializes every metric, name-sorted (std::map order), as
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(JsonWriter& w) const {
    const std::scoped_lock lock(mu_);
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, c] : counters_) w.kv(name, c.value());
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, g] : gauges_) w.kv(name, g.value());
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : histograms_) {
      w.key(name).begin_object();
      w.key("bounds").begin_array();
      for (const double b : h.bounds()) w.value(b);
      w.end_array();
      w.key("counts").begin_array();
      for (std::size_t i = 0; i < h.num_buckets(); ++i) w.value(h.bucket(i));
      w.end_array();
      w.kv("count", h.count());
      w.kv("sum", h.sum());
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sg::obs
