#include "obs/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace sg::obs {

// ---- writer --------------------------------------------------------------

std::string format_double(double d) {
  std::array<char, 40> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  return std::string(buf.data(), res.ptr);
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

void JsonWriter::escape(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += hex;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  stack_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  stack_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  escape(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  escape(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  out_ += format_double(d);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separate();
  std::array<char, 24> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), u);
  out_.append(buf.data(), res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separate();
  std::array<char, 24> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), i);
  out_.append(buf.data(), res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

// ---- parser --------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            unsigned code = 0;
            const auto res = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (res.ptr != text_.data() + pos_ + 4) fail("bad \\u escape");
            pos_ += 4;
            // Only BMP code points; encode as UTF-8 (obs emits ASCII, so
            // this path exists for completeness).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        start == pos_) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(k), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view dotted_path) const {
  const JsonValue* cur = this;
  while (!dotted_path.empty()) {
    if (cur->kind != Kind::kObject) return nullptr;
    const std::size_t dot = dotted_path.find('.');
    const std::string component(dotted_path.substr(0, dot));
    const auto it = cur->object.find(component);
    if (it == cur->object.end()) return nullptr;
    cur = &it->second;
    if (dot == std::string_view::npos) break;
    dotted_path.remove_prefix(dot + 1);
  }
  return cur;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace sg::obs
