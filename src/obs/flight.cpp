#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>

namespace sg::obs {

const char* to_string(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kRound: return "round";
    case FlightKind::kFault: return "fault";
    case FlightKind::kCrash: return "crash";
    case FlightKind::kEvict: return "evict";
    case FlightKind::kGray: return "gray";
    case FlightKind::kWire: return "wire";
    case FlightKind::kAudit: return "audit";
    case FlightKind::kRepair: return "repair";
    case FlightKind::kRollback: return "rollback";
    case FlightKind::kRestart: return "restart";
    case FlightKind::kRehome: return "rehome";
    case FlightKind::kCheckpoint: return "checkpoint";
    case FlightKind::kServeAdmit: return "serve_admit";
    case FlightKind::kServeReject: return "serve_reject";
    case FlightKind::kServeBrownout: return "serve_brownout";
    case FlightKind::kServeReshard: return "serve_reshard";
    case FlightKind::kServeRetry: return "serve_retry";
    case FlightKind::kCertificate: return "certificate";
    case FlightKind::kAbort: return "abort";
    case FlightKind::kNote: return "note";
  }
  return "unknown";
}

namespace {

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::int64_t wall_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : cap_(round_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(cap_ - 1),
      slots_(new Slot[cap_]) {}

void FlightRecorder::record(FlightKind kind, int device, std::int64_t a,
                            std::int64_t b, const char* detail,
                            double sim_s) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  // Seqlock: odd stamp marks the slot torn while the payload is
  // written; readers that see it (or see the stamp move) discard.
  s.stamp.store(2 * seq + 1, std::memory_order_release);
  FlightEvent& e = s.event;
  e.seq = seq;
  e.sim_us = static_cast<std::int64_t>(std::llround(sim_s * 1e6));
  e.wall_ns = wall_now_ns();
  e.a = a;
  e.b = b;
  e.device = device;
  e.kind = kind;
  std::size_t i = 0;
  if (detail != nullptr) {
    for (; i + 1 < sizeof(e.detail) && detail[i] != '\0'; ++i)
      e.detail[i] = detail[i];
  }
  for (; i < sizeof(e.detail); ++i) e.detail[i] = '\0';
  s.stamp.store(2 * seq + 2, std::memory_order_release);
}

std::size_t FlightRecorder::recorded() const noexcept {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  return static_cast<std::size_t>(std::min<std::uint64_t>(h, cap_));
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  return h > cap_ ? h - cap_ : 0;
}

void FlightRecorder::clear() noexcept {
  for (std::size_t i = 0; i < cap_; ++i)
    slots_[i].stamp.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(cap_);
  for (std::size_t i = 0; i < cap_; ++i) {
    const Slot& s = slots_[i];
    // Bounded retries per slot: a slot being concurrently rewritten a
    // few times in a row is a wrap-heavy writer; skip rather than spin.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) {
        if (before == 0) break;  // never written
        continue;                // mid-write, retry
      }
      FlightEvent copy = s.event;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.stamp.load(std::memory_order_acquire) == before) {
        out.push_back(copy);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

namespace {

void write_event(JsonWriter& w, const FlightEvent& e, bool include_wall) {
  w.begin_object();
  if (include_wall) {
    w.kv("seq", e.seq);
    w.kv("wall_ns", e.wall_ns);
  }
  w.kv("t_us", e.sim_us);
  w.kv("kind", to_string(e.kind));
  w.kv("device", e.device);
  w.kv("a", e.a);
  w.kv("b", e.b);
  w.kv("detail", std::string_view(e.detail));
  w.end_object();
}

}  // namespace

void FlightRecorder::write_json(JsonWriter& w, bool include_wall) const {
  std::vector<FlightEvent> events = snapshot();
  if (!include_wall) {
    // Pool threads race to record, so seq order is not reproducible.
    // The *multiset* of events is (seeded faults, simulated stamps);
    // canonical order makes the deterministic dump byte-stable.
    std::sort(events.begin(), events.end(),
              [](const FlightEvent& x, const FlightEvent& y) {
                if (x.sim_us != y.sim_us) return x.sim_us < y.sim_us;
                if (x.kind != y.kind) return x.kind < y.kind;
                if (x.device != y.device) return x.device < y.device;
                if (x.a != y.a) return x.a < y.a;
                if (x.b != y.b) return x.b < y.b;
                return std::strcmp(x.detail, y.detail) < 0;
              });
  }
  w.begin_object();
  w.kv("nondeterministic", include_wall);
  w.kv("capacity", static_cast<std::uint64_t>(cap_));
  w.kv("recorded", static_cast<std::uint64_t>(events.size()));
  w.kv("dropped", dropped());
  w.key("events").begin_array();
  for (const FlightEvent& e : events) write_event(w, e, include_wall);
  w.end_array();
  w.end_object();
}

bool FlightRecorder::dump(const std::filesystem::path& path,
                          std::string_view trigger, bool include_wall) const {
  JsonWriter w;
  w.begin_object();
  w.kv("sg_flight_schema", kFlightSchemaVersion);
  w.kv("trigger", trigger);
  w.key("flight");
  write_json(w, include_wall);
  w.end_object();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << w.str() << '\n';
  return static_cast<bool>(out);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder rec(4096);
  return rec;
}

AbortDump::AbortDump(FlightRecorder& rec, std::filesystem::path path,
                     double sim_s) noexcept
    : rec_(rec),
      path_(std::move(path)),
      sim_s_(sim_s),
      exceptions_(std::uncaught_exceptions()) {}

AbortDump::~AbortDump() {
  if (std::uncaught_exceptions() <= exceptions_) return;
  rec_.record(FlightKind::kAbort, -1, 0, 0, "exception", sim_s_);
  std::filesystem::path target = path_;
  if (target.empty()) {
    if (const char* env = std::getenv("SG_FLIGHT_DUMP");
        env != nullptr && env[0] != '\0') {
      target = env;
    }
  }
  if (target.empty()) return;
  try {
    rec_.dump(target, "engine_abort", /*include_wall=*/true);
  } catch (...) {
    // Never replace the propagating engine error with a dump failure.
  }
}

}  // namespace sg::obs
