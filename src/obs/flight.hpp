#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sg::obs {

/// Version of the flight-recorder dump schema (`sg_flight_schema`).
inline constexpr int kFlightSchemaVersion = 1;

/// What happened. Kept to a small closed set so dumps stay greppable
/// and sg_explain can tabulate them without free-form parsing.
enum class FlightKind : std::uint8_t {
  kRound = 0,        ///< global round transition
  kFault,            ///< injected fault applied (label flip, ...)
  kCrash,            ///< device crash observed at a barrier
  kEvict,            ///< device permanently evicted
  kGray,             ///< gray-failure verdict on a device
  kWire,             ///< wire-protocol anomaly (fence/checksum/dup/...)
  kAudit,            ///< integrity audit violation
  kRepair,           ///< shard repair / re-homing action
  kRollback,         ///< checkpoint rollback
  kRestart,          ///< cold restart after unrecoverable state
  kRehome,           ///< master re-homing summary after eviction
  kCheckpoint,       ///< checkpoint taken
  kServeAdmit,       ///< serve-layer query batch admitted
  kServeReject,      ///< serve-layer query rejected
  kServeBrownout,    ///< serve-layer brownout tier transition
  kServeReshard,     ///< serve-layer tenant state migrated across homes
  kServeRetry,       ///< serve-layer batch retried / hedged
  kCertificate,      ///< final-audit certificate verdict
  kAbort,            ///< engine aborted (exception unwinding run())
  kNote,             ///< free-form breadcrumb
};

[[nodiscard]] const char* to_string(FlightKind k) noexcept;

/// One ring slot payload. Trivially copyable by design: recording is a
/// seqlock-stamped memcpy-class store, never an allocation. `detail` is
/// a fixed-width, NUL-terminated tag ("checksum", "fence", ...).
struct FlightEvent {
  std::uint64_t seq = 0;      ///< global record index (monotonic)
  std::int64_t sim_us = 0;    ///< simulated timestamp, microseconds
  std::int64_t wall_ns = 0;   ///< host steady-clock stamp (nondeterministic)
  std::int64_t a = 0;         ///< kind-specific operand
  std::int64_t b = 0;         ///< kind-specific operand
  std::int32_t device = -1;   ///< device involved, -1 when n/a
  FlightKind kind = FlightKind::kNote;
  char detail[23] = {};
};
static_assert(std::is_trivially_copyable_v<FlightEvent>);

/// Always-on, fixed-capacity, lock-free ring of structured engine
/// events — the black box. Writers (engine phases run on pool threads)
/// claim a slot with one fetch_add and publish it with a seqlock stamp:
/// odd = write in progress, even = slot holds the event whose seq is
/// (stamp - 2) / 2. Readers copy slots and discard any that were
/// concurrently overwritten, so `record()` never blocks and never
/// allocates. Capacity is rounded up to a power of two.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Lock-free, allocation-free, noexcept: safe from
  /// any engine phase including parallel_for workers.
  void record(FlightKind kind, int device, std::int64_t a, std::int64_t b,
              const char* detail, double sim_s) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  /// Events currently held (<= capacity()).
  [[nodiscard]] std::size_t recorded() const noexcept;
  /// Events overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// Total events ever recorded.
  [[nodiscard]] std::uint64_t total() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Forgets all events (keeps capacity). Not safe concurrently with
  /// record(); call only from quiesced code (tests, run setup).
  void clear() noexcept;

  /// Stable copy of the ring contents in seq order.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Serializes the ring into `w` as an object. Deterministic mode
  /// (include_wall = false) sorts events on (sim_us, kind, device, a,
  /// b, detail) and omits seq/wall_ns, so two runs of the same seeded
  /// scenario dump byte-identical JSON even though pool threads raced
  /// to record. Black-box mode (include_wall = true) keeps raw seq
  /// order and host timestamps and is marked "nondeterministic".
  void write_json(JsonWriter& w, bool include_wall = false) const;

  /// Writes a complete dump document to `path`:
  ///   {"sg_flight_schema":1,"trigger":...,"nondeterministic":...,
  ///    "capacity":...,"recorded":...,"dropped":...,"events":[...]}
  /// False on I/O failure.
  bool dump(const std::filesystem::path& path, std::string_view trigger,
            bool include_wall = false) const;

  /// Process-wide recorder used when no instance is wired through
  /// EngineConfig. Always on; ~290 KiB once touched.
  static FlightRecorder& global();

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // 0 empty; odd writing; even done
    FlightEvent event;
  };

  std::size_t cap_;   // power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// RAII dump-on-abort guard for `Engine::run()`: if the scope unwinds
/// with a new in-flight exception, records a kAbort event and dumps the
/// recorder (black-box mode) to `path` — or to $SG_FLIGHT_DUMP when
/// `path` is empty; inert when neither names a file.
class AbortDump {
 public:
  AbortDump(FlightRecorder& rec, std::filesystem::path path,
            double sim_s) noexcept;
  ~AbortDump();

  AbortDump(const AbortDump&) = delete;
  AbortDump& operator=(const AbortDump&) = delete;

  /// Updates the simulated timestamp stamped on the kAbort event.
  void advance(double sim_s) noexcept { sim_s_ = sim_s; }

 private:
  FlightRecorder& rec_;
  std::filesystem::path path_;
  double sim_s_;
  int exceptions_;
};

}  // namespace sg::obs
