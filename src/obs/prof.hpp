#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sg::obs {

/// Version of the host-time profile schema (`sg_host_time_schema`).
inline constexpr int kHostTimeSchemaVersion = 1;

/// Hierarchical scoped wall-clock profiler for the *real* host work
/// (label-update kernels, partitioning, sync serialize/apply, audit
/// scans, serve batch assembly). Timing uses steady_clock; every
/// thread accumulates into its own node table (no locks, no sharing on
/// the hot path) and tables are merged on snapshot(). Disabled
/// profilers (the default for the process-wide instance) make scope()
/// a branch-and-return no-op so instrumentation can stay compiled in
/// everywhere.
///
/// Host time is inherently nondeterministic; it is serialized only
/// into sections explicitly marked "nondeterministic" and never into
/// the byte-compared simulated-time report fields.
class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  class Scope {
   public:
    ~Scope() {
      if (table_ == nullptr) return;
      Profiler::leave(*table_, node_, saved_,
                      std::chrono::steady_clock::now() - start_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    friend class Profiler;
    Scope() = default;
    Scope(struct ThreadTable* t, std::uint32_t node, std::uint32_t saved,
          std::chrono::steady_clock::time_point start)
        : table_(t), node_(node), saved_(saved), start_(start) {}
    struct ThreadTable* table_ = nullptr;
    std::uint32_t node_ = 0;
    std::uint32_t saved_ = 0;
    std::chrono::steady_clock::time_point start_;
  };

  /// Opens a timed scope named `name` nested under the calling
  /// thread's current scope. `name` must have static storage duration
  /// (string literals). Returns a no-op guard when disabled.
  [[nodiscard]] Scope scope(const char* name) noexcept;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all accumulated samples. Call only while no thread is
  /// inside one of this profiler's scopes.
  void reset();

  struct Node {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::vector<Node> children;  // name-sorted
  };

  struct Snapshot {
    std::vector<Node> roots;          ///< name-sorted merged call tree
    std::uint64_t scopes = 0;         ///< total scope enter/exit pairs
    double per_scope_overhead_ns = 0; ///< calibrated cost of one scope
    /// Estimated time the profiler itself charged to the run:
    /// scopes * per_scope_overhead_ns.
    [[nodiscard]] double self_overhead_ms() const {
      return static_cast<double>(scopes) * per_scope_overhead_ns / 1e6;
    }
  };

  /// Merges every thread's table into one tree. Call from quiesced
  /// code (after run()/report time), not concurrently with scopes.
  [[nodiscard]] Snapshot snapshot() const;

  /// Serializes snapshot() as an object:
  ///   {"sg_host_time_schema":1,"nondeterministic":true,
  ///    "scopes":N,"per_scope_overhead_ns":X,"self_overhead_ms":X,
  ///    "tree":[{"name":..,"calls":N,"total_ms":X,"children":[..]}]}
  void write_json(JsonWriter& w) const;

  /// Measured cost of one enabled enter/exit pair on this host,
  /// calibrated once per process on first use.
  static double calibrated_scope_overhead_ns();

  /// Process-wide profiler used when no instance is wired through
  /// EngineConfig. Disabled until someone calls set_enabled(true).
  static Profiler& global();

 private:
  friend class Scope;
  static void leave(ThreadTable& t, std::uint32_t node, std::uint32_t saved,
                    std::chrono::steady_clock::duration elapsed) noexcept;
  ThreadTable& table_for_current_thread();

  std::atomic<bool> enabled_{false};
  std::uint64_t id_;  // process-unique, never reused

  mutable std::mutex mu_;  // guards tables_ registration + snapshot
  std::vector<std::unique_ptr<ThreadTable>> tables_;
};

}  // namespace sg::obs
