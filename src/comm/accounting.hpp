#pragma once

#include <cstdint>

namespace sg::comm {

/// Byte/message counters for one run, split by hop as the paper's
/// breakdown figures require (device-host PCIe traffic vs host-host
/// network traffic).
struct CommStats {
  std::uint64_t device_to_host_bytes = 0;
  std::uint64_t host_to_host_bytes = 0;   ///< cross-host only
  std::uint64_t host_to_device_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t reduce_values = 0;     ///< values shipped mirror -> master
  std::uint64_t broadcast_values = 0;  ///< values shipped master -> mirror
  std::uint64_t retransmitted_messages = 0;  ///< fault-retry resends
  std::uint64_t retransmitted_bytes = 0;     ///< bytes re-sent on retry

  /// Total volume as reported on the bars of Figures 4-6, 8-9 (all
  /// traffic that leaves a device).
  [[nodiscard]] std::uint64_t total_volume() const {
    return device_to_host_bytes + host_to_device_bytes;
  }

  CommStats& operator+=(const CommStats& o) {
    device_to_host_bytes += o.device_to_host_bytes;
    host_to_host_bytes += o.host_to_host_bytes;
    host_to_device_bytes += o.host_to_device_bytes;
    messages += o.messages;
    reduce_values += o.reduce_values;
    broadcast_values += o.broadcast_values;
    retransmitted_messages += o.retransmitted_messages;
    retransmitted_bytes += o.retransmitted_bytes;
    return *this;
  }
};

}  // namespace sg::comm
