#pragma once

#include <cstdint>
#include <vector>

#include "partition/dist_graph.hpp"

namespace sg::comm {

/// Which mirror proxies participate in a sync, derived from the
/// operator's read/write locations and the proxies' structural role:
///  * kWithOut - proxies holding outgoing edges locally (they are read
///               as edge *sources*, and written when an operator writes
///               at the source);
///  * kWithIn  - proxies holding incoming edges locally (read as edge
///               *destinations*, written by push-style operators);
///  * kAll     - both (every mirror exists because of at least one edge,
///               so kAll = kWithOut union kWithIn);
///  * kNone    - sync fully elided.
enum class ProxyFilter : std::uint8_t { kNone, kWithOut, kWithIn, kAll };

/// Where an operator reads / writes a field (Gluon's read/write location
/// declarations, Section III-D1).
struct SyncPattern {
  bool reads_src = false;
  bool reads_dst = false;
  bool writes_src = false;
  bool writes_dst = false;

  /// Mirrors that may hold updates for the master.
  [[nodiscard]] ProxyFilter reduce_filter() const {
    return pick(writes_src, writes_dst);
  }
  /// Mirrors that may read the master's value.
  [[nodiscard]] ProxyFilter broadcast_filter() const {
    return pick(reads_src, reads_dst);
  }

  /// Push-style vertex programs: read the source, write destinations.
  [[nodiscard]] static SyncPattern push() {
    return SyncPattern{.reads_src = true, .writes_dst = true};
  }
  /// Pull-style: read the (in-edge) source values, then read-modify-write
  /// the destination vertex's own accumulator. Unlike push(), the
  /// destination field is both read and written at the destination, so
  /// broadcasts must reach every proxy (kAll), not just in-edge holders
  /// (Gluon Section III-D1: readDestination implies the post-reduce value
  /// is consumed wherever the vertex is materialized).
  [[nodiscard]] static SyncPattern pull() {
    return SyncPattern{.reads_src = true, .reads_dst = true,
                       .writes_dst = true};
  }

 private:
  static ProxyFilter pick(bool src, bool dst) {
    if (src && dst) return ProxyFilter::kAll;
    if (src) return ProxyFilter::kWithOut;
    if (dst) return ProxyFilter::kWithIn;
    return ProxyFilter::kNone;
  }
};

/// Memoized exchange list for one (mirror device -> master device) pair
/// and one filter. Entries are parallel: mirror_local[i] on the mirror
/// device corresponds to master_local[i] on the master device. Because
/// both sides share this order, messages never carry global ids —
/// Gluon's address-translation elision (Section III-D2).
struct ExchangeList {
  std::vector<graph::VertexId> mirror_local;
  std::vector<graph::VertexId> master_local;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(mirror_local.size());
  }
};

/// All exchange lists for a partition, built once after partitioning
/// (the "memoization" setup round).
class SyncStructure {
 public:
  explicit SyncStructure(const partition::DistGraph& dg);

  [[nodiscard]] int num_devices() const { return num_devices_; }

  /// Exchange list for mirrors on `mirror_dev` whose master lives on
  /// `master_dev`, restricted to `filter`.
  [[nodiscard]] const ExchangeList& list(int mirror_dev, int master_dev,
                                         ProxyFilter filter) const;

  /// Total shared entries on `dev` under `filter`, summed over partners,
  /// in the mirror role plus the master role. This is the number of
  /// slots a UO prefix-scan must inspect on that device.
  [[nodiscard]] std::uint64_t shared_entries(int dev,
                                             ProxyFilter filter) const;

  /// Device-memory bytes for the sync metadata on `dev` (index lists
  /// live on the GPU so extraction kernels can use them).
  [[nodiscard]] std::uint64_t metadata_bytes(int dev) const;

  /// Total mirror proxies across all devices (the kAll exchange-list
  /// entries, each mirror counted once).
  [[nodiscard]] std::uint64_t total_mirrors() const;

  /// Average proxies per master vertex: (masters + mirrors) / masters —
  /// the partition's replication factor (paper Table IV), which is what
  /// sync volume scales with. 1.0 when nothing is replicated;
  /// 0 masters yields 0.
  [[nodiscard]] double replication_factor(
      const partition::DistGraph& dg) const;

 private:
  [[nodiscard]] std::size_t slot(int mirror_dev, int master_dev) const {
    return static_cast<std::size_t>(mirror_dev) * num_devices_ + master_dev;
  }

  int num_devices_;
  // Indexed [filter][mirror_dev * D + master_dev]; kNone is empty.
  std::vector<ExchangeList> with_out_;
  std::vector<ExchangeList> with_in_;
  std::vector<ExchangeList> all_;
  ExchangeList empty_;
};

}  // namespace sg::comm
