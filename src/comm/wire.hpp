#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "util/hash.hpp"

namespace sg::comm {

/// Versioned wire header stamped on every proxy-sync payload when the
/// engine's wire protocol is enabled. The modeled encoding packs into
/// the 16 header bytes `wire_bytes()` already charges per message —
/// version/kind/flags (2B), epoch (2B), sequence (4B), round (4B),
/// checksum (4B, truncated FNV-1a) — so enabling the protocol changes
/// neither simulated bytes nor simulated time on a clean run. The
/// in-memory struct keeps wider fields for bookkeeping convenience.
///
/// Receiver rules (see DESIGN.md §11):
///  * epoch != current layout epoch  -> discard (fence reject);
///  * seq <  next expected (channel) -> discard (duplicate);
///  * seq >  next expected (channel) -> hold in the reorder buffer;
///  * checksum mismatch              -> discard + NACK (sender retries
///                                      with the drop-retry backoff).
struct WireHeader {
  std::uint16_t version = 0;  ///< 0 = unsealed (protocol off)
  std::uint8_t kind = 0;      ///< fault::MsgKind (reduce / broadcast)
  std::uint32_t epoch = 0;    ///< layout epoch (bumped per eviction)
  std::uint64_t seq = 0;      ///< per-(src,dst,kind) channel sequence
  std::uint64_t round = 0;    ///< sender round at seal time
  std::uint64_t checksum = 0; ///< FNV-1a over positions + values

  [[nodiscard]] bool sealed() const { return version != 0; }
};

inline constexpr std::uint16_t kWireVersion = 1;

/// FNV-1a over a byte range, chainable via `h` (delegates to the shared
/// implementation in util/hash.hpp; kept as an alias so wire-protocol
/// call sites read naturally).
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t n,
                                         std::uint64_t h =
                                             util::kFnv1aOffset) {
  return util::fnv1a64(data, n, h);
}

/// Payload checksum: FNV-1a over the position list then the value
/// bytes. Works for any trivially copyable value type.
template <typename PayloadT>
[[nodiscard]] std::uint64_t payload_checksum(const PayloadT& p) {
  std::uint64_t h = fnv1a(p.positions.data(),
                          p.positions.size() * sizeof(std::uint32_t));
  return fnv1a(p.values.data(),
               p.values.size() * sizeof(typename std::remove_reference_t<
                   decltype(p.values)>::value_type),
               h);
}

/// Recomputes and compares the sealed checksum. Unsealed payloads (or
/// sealed ones with checksumming elided on a fault-free run, checksum
/// 0) verify trivially.
template <typename PayloadT>
[[nodiscard]] bool verify_payload(const PayloadT& p) {
  if (!p.header.sealed() || p.header.checksum == 0) return true;
  return payload_checksum(p) == p.header.checksum;
}

/// Deterministically perturbs one value of an in-flight payload (bit
/// flip chosen by `h`). Models silent in-network data corruption: the
/// kind a checksum exists to catch. Positions are left intact — an
/// index flip would be caught by range validation anyway; a value flip
/// is the silent failure mode. No-op on empty payloads.
template <typename PayloadT>
void corrupt_payload(PayloadT& p, std::uint64_t h) {
  if (p.values.empty()) return;
  using T = typename std::remove_reference_t<
      decltype(p.values)>::value_type;
  const std::size_t idx = static_cast<std::size_t>(h >> 8)
                          % p.values.size();
  const unsigned bit = static_cast<unsigned>(h % (sizeof(T) * 8));
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &p.values[idx], sizeof(T));
  bytes[bit / 8] = static_cast<unsigned char>(bytes[bit / 8] ^
                                              (1u << (bit % 8)));
  std::memcpy(&p.values[idx], bytes, sizeof(T));
}

}  // namespace sg::comm
