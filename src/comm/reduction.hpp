#pragma once

#include <algorithm>
#include <limits>

namespace sg::comm {

/// Reduction semantics for proxy synchronization (mirror -> master).
///
/// A ReduceOp provides:
///   * identity()                  - the neutral element;
///   * combine(into, incoming)     - merge, returning whether `into`
///                                   changed (drives active-set marking);
///   * reset_after_extract         - whether a proxy's local value resets
///                                   to identity once shipped (accumulator
///                                   semantics: pagerank residuals, kcore
///                                   trim counts must not be re-sent).

/// Minimum: bfs/sssp distances, cc component labels.
template <typename T>
struct MinOp {
  static constexpr bool reset_after_extract = false;
  [[nodiscard]] static T identity() { return std::numeric_limits<T>::max(); }
  static bool combine(T& into, T incoming) {
    if (incoming < into) {
      into = incoming;
      return true;
    }
    return false;
  }
};

/// Accumulating sum: pagerank residual contributions, kcore trims.
template <typename T>
struct AddOp {
  static constexpr bool reset_after_extract = true;
  [[nodiscard]] static T identity() { return T{}; }
  static bool combine(T& into, T incoming) {
    if (incoming == T{}) return false;
    into += incoming;
    return true;
  }
};

/// Maximum: monotone counters (pagerank's cumulative consumed-residual
/// stream survives reordered/coalesced broadcasts in BASP).
template <typename T>
struct MaxOp {
  static constexpr bool reset_after_extract = false;
  [[nodiscard]] static T identity() { return std::numeric_limits<T>::lowest(); }
  static bool combine(T& into, T incoming) {
    if (into < incoming) {
      into = incoming;
      return true;
    }
    return false;
  }
};

/// Last-writer-wins assignment (used by broadcasts and by fields where
/// the master recomputes and mirrors only cache).
template <typename T>
struct AssignOp {
  static constexpr bool reset_after_extract = false;
  [[nodiscard]] static T identity() { return T{}; }
  static bool combine(T& into, T incoming) {
    if (into == incoming) return false;
    into = incoming;
    return true;
  }
};

}  // namespace sg::comm
