#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sg::comm {

/// Dense dynamic bitset used for update tracking (Gluon's per-field
/// "dirty" bitvectors). The GPU-side prefix-scan that Gluon performs to
/// extract set positions is *cost-modeled* by GpuCostModel; this class
/// only provides the functional behaviour.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() { words_.assign(words_.size(), 0); }

  [[nodiscard]] bool any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  /// Wire size of the bitset itself (Gluon may ship the bitvector
  /// instead of explicit indices when that is smaller).
  [[nodiscard]] std::uint64_t wire_bytes() const { return (size_ + 7) / 8; }

  /// Raw word access for checkpoint serialization.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }
  [[nodiscard]] std::vector<std::uint64_t>& words() { return words_; }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sg::comm
