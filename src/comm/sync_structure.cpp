#include "comm/sync_structure.hpp"

#include <stdexcept>

namespace sg::comm {

using graph::VertexId;
using partition::LocalGraph;

SyncStructure::SyncStructure(const partition::DistGraph& dg)
    : num_devices_(dg.num_devices()) {
  const auto slots =
      static_cast<std::size_t>(num_devices_) * num_devices_;
  with_out_.resize(slots);
  with_in_.resize(slots);
  all_.resize(slots);

  for (int d = 0; d < num_devices_; ++d) {
    const LocalGraph& lg = dg.part(d);
    for (VertexId m = lg.num_masters; m < lg.num_local; ++m) {
      const VertexId gid = lg.l2g[m];
      const int owner = dg.master_of(gid);
      const LocalGraph& master_part = dg.part(owner);
      const auto it = master_part.g2l.find(gid);
      if (it == master_part.g2l.end()) {
        throw std::logic_error(
            "SyncStructure: master proxy missing on owner device");
      }
      const VertexId master_local = it->second;
      const std::size_t s = slot(d, owner);
      all_[s].mirror_local.push_back(m);
      all_[s].master_local.push_back(master_local);
      if (lg.has_out(m)) {
        with_out_[s].mirror_local.push_back(m);
        with_out_[s].master_local.push_back(master_local);
      }
      if (lg.has_in(m)) {
        with_in_[s].mirror_local.push_back(m);
        with_in_[s].master_local.push_back(master_local);
      }
    }
  }
}

const ExchangeList& SyncStructure::list(int mirror_dev, int master_dev,
                                        ProxyFilter filter) const {
  switch (filter) {
    case ProxyFilter::kNone: return empty_;
    case ProxyFilter::kWithOut: return with_out_[slot(mirror_dev, master_dev)];
    case ProxyFilter::kWithIn: return with_in_[slot(mirror_dev, master_dev)];
    case ProxyFilter::kAll: return all_[slot(mirror_dev, master_dev)];
  }
  return empty_;
}

std::uint64_t SyncStructure::shared_entries(int dev,
                                            ProxyFilter filter) const {
  std::uint64_t total = 0;
  for (int o = 0; o < num_devices_; ++o) {
    total += list(dev, o, filter).size();   // dev as mirror side
    total += list(o, dev, filter).size();   // dev as master side
  }
  return total;
}

std::uint64_t SyncStructure::total_mirrors() const {
  std::uint64_t total = 0;
  for (const ExchangeList& l : all_) total += l.size();
  return total;
}

double SyncStructure::replication_factor(
    const partition::DistGraph& dg) const {
  std::uint64_t masters = 0;
  for (int d = 0; d < num_devices_; ++d) {
    masters += dg.part(d).num_masters;
  }
  if (masters == 0) return 0.0;
  return static_cast<double>(masters + total_mirrors()) /
         static_cast<double>(masters);
}

std::uint64_t SyncStructure::metadata_bytes(int dev) const {
  std::uint64_t entries = 0;
  for (int o = 0; o < num_devices_; ++o) {
    entries += all_[slot(dev, o)].size();  // mirror-side index list
    entries += all_[slot(o, dev)].size();  // master-side index list
  }
  return entries * sizeof(VertexId);
}

}  // namespace sg::comm
