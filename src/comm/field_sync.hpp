#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/bitset.hpp"
#include "comm/sync_structure.hpp"
#include "comm/wire.hpp"
#include "graph/types.hpp"

namespace sg::comm {

/// Communication optimization studied in the paper (Section IV-C):
///  * kAS - synchronize all shared proxies every round (Lux; D-IrGL Var1/2);
///  * kUO - track updates and ship only changed values (D-IrGL default).
enum class SyncMode : std::uint8_t { kAS, kUO };

[[nodiscard]] inline const char* to_string(SyncMode m) {
  return m == SyncMode::kAS ? "AS" : "UO";
}

/// Modeled wire size of one proxy-sync message.
///
/// AS ships the whole exchange list as raw values (the shared order is
/// memoized, so no ids are needed). UO ships the changed values plus the
/// cheaper of an explicit index list or the dirty bitvector — the same
/// choice Gluon makes.
[[nodiscard]] inline std::uint64_t wire_bytes(std::uint32_t list_size,
                                              std::uint32_t sent,
                                              std::size_t val_size,
                                              SyncMode mode) {
  constexpr std::uint64_t kHeader = 16;
  if (list_size == 0) return 0;
  if (mode == SyncMode::kAS) {
    return kHeader + static_cast<std::uint64_t>(list_size) * val_size;
  }
  if (sent == 0) return kHeader;  // empty-update notification
  const std::uint64_t index_bytes =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(sent) * 4,
                              (static_cast<std::uint64_t>(list_size) + 7) / 8);
  return kHeader + static_cast<std::uint64_t>(sent) * val_size + index_bytes;
}

/// One extracted message for a (sender, receiver) device pair.
/// `positions` are indices *into the exchange list* (not vertex ids) —
/// empty means "all entries in list order" (AS).
template <typename T>
struct Payload {
  int from = -1;
  int to = -1;
  std::vector<std::uint32_t> positions;
  std::vector<T> values;
  std::uint64_t bytes = 0;    ///< modeled wire size
  std::uint64_t scanned = 0;  ///< entries inspected (UO extraction cost)
  /// Versioned wire header (seq / epoch / checksum), stamped by the
  /// executor when EngineConfig::wire_protocol is on. Modeled within
  /// the 16 header bytes `wire_bytes()` already charges.
  WireHeader header;

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(values.size());
  }
  [[nodiscard]] bool empty_update() const { return values.empty(); }
};

/// Functional reduce (mirror -> master) for one field with reduction
/// `Op`, and broadcast (master -> mirror) with combine `Op` (AssignOp
/// for plain caching; MinOp for BASP-safe monotone labels; custom for
/// flag-only broadcasts like kcore's dead bit).
///
/// These routines move real values between per-device label arrays; the
/// executors charge their simulated cost (extraction scan, PCIe and
/// network transfer, apply copy) separately via the cost models.
template <typename T, typename Op>
struct FieldSync {
  /// Mirror-side extraction for the master on the receiving device.
  /// UO: ships entries whose dirty bit is set, clearing those bits;
  /// AS: ships every entry (and clears bits, which are then all stale).
  /// With accumulator semantics (Op::reset_after_extract) shipped slots
  /// reset to the identity so contributions are not double-counted.
  static Payload<T> extract_reduce(const ExchangeList& list,
                                   std::span<T> values, Bitset& dirty,
                                   SyncMode mode, int from, int to) {
    Payload<T> p;
    p.from = from;
    p.to = to;
    const std::uint32_t n = list.size();
    if (mode == SyncMode::kAS) {
      p.values.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const graph::VertexId v = list.mirror_local[i];
        p.values.push_back(values[v]);
        if constexpr (Op::reset_after_extract) values[v] = Op::identity();
        dirty.reset(v);
      }
    } else {
      p.scanned = n;
      for (std::uint32_t i = 0; i < n; ++i) {
        const graph::VertexId v = list.mirror_local[i];
        if (dirty.test(v)) {
          p.positions.push_back(i);
          p.values.push_back(values[v]);
          if constexpr (Op::reset_after_extract) values[v] = Op::identity();
          dirty.reset(v);
        }
      }
    }
    p.bytes = wire_bytes(n, p.count(), sizeof(T), mode);
    return p;
  }

  /// Master-side application: combine incoming values into the master
  /// copies. Changed masters get their broadcast-dirty bit set and are
  /// appended to `changed` if provided.
  static std::uint32_t apply_reduce(const ExchangeList& list,
                                    const Payload<T>& p, std::span<T> values,
                                    Bitset& bcast_dirty,
                                    std::vector<graph::VertexId>* changed) {
    std::uint32_t num_changed = 0;
    const bool dense = p.positions.empty();
    for (std::uint32_t i = 0; i < p.count(); ++i) {
      const std::uint32_t pos = dense ? i : p.positions[i];
      const graph::VertexId v = list.master_local[pos];
      if (Op::combine(values[v], p.values[i])) {
        ++num_changed;
        bcast_dirty.set(v);
        if (changed != nullptr) changed->push_back(v);
      }
    }
    return num_changed;
  }

  /// Master-side extraction of canonical values for one mirror device.
  /// Does not clear dirty bits: a master may broadcast to several
  /// partners, so the executor clears them after the broadcast phase.
  static Payload<T> extract_broadcast(const ExchangeList& list,
                                      std::span<const T> values,
                                      const Bitset& dirty, SyncMode mode,
                                      int from, int to) {
    Payload<T> p;
    p.from = from;
    p.to = to;
    const std::uint32_t n = list.size();
    if (mode == SyncMode::kAS) {
      p.values.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        p.values.push_back(values[list.master_local[i]]);
      }
    } else {
      p.scanned = n;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (dirty.test(list.master_local[i])) {
          p.positions.push_back(i);
          p.values.push_back(values[list.master_local[i]]);
        }
      }
    }
    p.bytes = wire_bytes(n, p.count(), sizeof(T), mode);
    return p;
  }

  /// Mirror-side application: combine canonical values into the cached
  /// copies with `Op`; changed mirrors are appended to `changed`.
  static std::uint32_t apply_broadcast(
      const ExchangeList& list, const Payload<T>& p, std::span<T> values,
      std::vector<graph::VertexId>* changed) {
    std::uint32_t num_changed = 0;
    const bool dense = p.positions.empty();
    for (std::uint32_t i = 0; i < p.count(); ++i) {
      const std::uint32_t pos = dense ? i : p.positions[i];
      const graph::VertexId v = list.mirror_local[pos];
      if (Op::combine(values[v], p.values[i])) {
        ++num_changed;
        if (changed != nullptr) changed->push_back(v);
      }
    }
    return num_changed;
  }
};

}  // namespace sg::comm
