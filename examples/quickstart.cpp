// Quickstart: the minimal end-to-end pipeline.
//
//   1. build (or load) a graph;
//   2. partition it across simulated GPUs with a policy;
//   3. run a benchmark under an engine configuration;
//   4. read the results and the simulated performance breakdown.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algo/bfs.hpp"
#include "comm/sync_structure.hpp"
#include "graph/generators.hpp"
#include "partition/dist_graph.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace sg;

  // 1. A synthetic power-law graph: 16k vertices, ~260k edges.
  const graph::Csr g = graph::rmat({.scale = 14, .edge_factor = 16,
                                    .seed = 1});
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Partition for 8 GPUs with the Cartesian vertex-cut; build the
  //    memoized communication structure once.
  const auto dg = partition::partition_graph(
      g, {.policy = partition::Policy::CVC, .num_devices = 8});
  const comm::SyncStructure sync(dg);
  std::printf("partitioned: replication factor %.2f, static balance %.2f\n",
              dg.stats().replication_factor, dg.stats().static_balance);

  // 3. A Bridges-like cluster (2 P100s per host) and the default D-IrGL
  //    configuration: ALB load balancing + update-only sync + BASP.
  const auto topo = sim::Topology::bridges(8);
  const auto params = sim::CostParams::for_scaled_datasets();
  engine::EngineConfig config;  // defaults = Var4

  const graph::VertexId source = 0;
  const auto result = algo::run_bfs(dg, sync, topo, params, config, source);

  // 4. Results + simulated performance.
  std::uint64_t reached = 0;
  std::uint32_t max_dist = 0;
  for (std::uint32_t dist : result.dist) {
    if (dist != algo::kInfDist) {
      ++reached;
      max_dist = std::max(max_dist, dist);
    }
  }
  std::printf("bfs from %u: reached %llu vertices, eccentricity %u\n",
              source, static_cast<unsigned long long>(reached), max_dist);
  std::printf("simulated time: %.3f ms  (compute %.3f ms, device-comm "
              "%.3f ms, min wait %.3f ms)\n",
              result.stats.total_time.millis(),
              result.stats.max_compute().millis(),
              result.stats.max_device_comm().millis(),
              result.stats.min_wait().millis());
  std::printf("rounds: %u, edges relaxed: %llu, comm volume: %.2f MB, "
              "peak device memory: %.2f MB\n",
              result.stats.global_rounds,
              static_cast<unsigned long long>(result.stats.total_work()),
              static_cast<double>(result.stats.comm.total_volume()) / 1e6,
              static_cast<double>(result.stats.max_memory()) / 1e6);
  return 0;
}
