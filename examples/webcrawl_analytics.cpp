// Web-crawl analytics: the scenario from the paper's motivation —
// massive, high-diameter web graphs with extreme in-degree hubs. Runs
// pagerank and bfs on the uk07 analogue at 32 GPUs under every
// partitioning policy and explains the trade-offs the numbers show.
//
// Build & run:  ./build/examples/webcrawl_analytics
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "comm/sync_structure.hpp"
#include "graph/datasets.hpp"
#include "graph/properties.hpp"
#include "partition/dist_graph.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace sg;

  const auto g = graph::datasets::make("uk07");
  const auto props = graph::analyze(g);
  std::printf("uk07 analogue: %u vertices, %llu edges, diameter ~%u, "
              "max in-degree %llu\n\n",
              props.num_vertices,
              static_cast<unsigned long long>(props.num_edges),
              props.approx_diameter,
              static_cast<unsigned long long>(props.max_in_degree));

  const int gpus = 32;
  const auto topo = sim::Topology::bridges(gpus);
  const auto params = sim::CostParams::for_scaled_datasets();
  engine::EngineConfig config;  // D-IrGL default (Var4)
  const auto source = graph::datasets::default_source(g);

  std::printf("%-8s %12s %12s %14s %10s %10s\n", "policy", "bfs(ms)",
              "pr(ms)", "repl.factor", "pr vol(MB)", "pr msgs");
  for (auto policy : {partition::Policy::OEC, partition::Policy::IEC,
                      partition::Policy::HVC, partition::Policy::CVC}) {
    const auto dg = partition::partition_graph(
        g, {.policy = policy, .num_devices = gpus});
    const comm::SyncStructure sync(dg);
    const auto bfs = algo::run_bfs(dg, sync, topo, params, config, source);
    const auto pr = algo::run_pagerank(dg, sync, topo, params, config);
    std::printf("%-8s %12.4f %12.3f %14.2f %10.1f %10llu\n",
                partition::to_string(policy), bfs.stats.total_time.millis(),
                pr.stats.total_time.millis(),
                dg.stats().replication_factor,
                static_cast<double>(pr.stats.comm.total_volume()) / 1e6,
                static_cast<unsigned long long>(pr.stats.comm.messages));
  }

  std::printf(
      "\nWhat to look for (the paper's Section V-C lessons):\n"
      " * CVC exchanges messages only with its grid row/column, so its\n"
      "   message count is a fraction of the edge-cuts';\n"
      " * HVC's hashed masters destroy the crawl's locality - its\n"
      "   replication factor and volume explode;\n"
      " * OEC elides the broadcast direction entirely for pull-style\n"
      "   pagerank (all out-edges live with the master).\n");

  // Top pages by rank, the actual analytics payload.
  const auto dg = partition::partition_graph(
      g, {.policy = partition::Policy::CVC, .num_devices = gpus});
  const comm::SyncStructure sync(dg);
  const auto pr = algo::run_pagerank(dg, sync, topo, params, config);
  std::vector<graph::VertexId> order(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](graph::VertexId a, graph::VertexId b) {
                      return pr.rank[a] > pr.rank[b];
                    });
  std::printf("\ntop pages by rank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d vertex %u rank %.4f\n", i + 1, order[i],
                pr.rank[order[i]]);
  }
  return 0;
}
