// Partition-store workflow: the paper's footnote-2 production pattern —
// "graphs can be partitioned once, and in-memory representations of the
// partitions can be written to disk. Applications can then load these
// partitions directly."
//
// This example partitions the twitter50 analogue for 16 GPUs, saves the
// partition, reloads it as a fresh application would, and shows that
// the loaded partition runs identically while skipping the partitioning
// cost entirely.
//
// Build & run:  ./build/examples/partition_store_workflow
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "algo/bfs.hpp"
#include "comm/sync_structure.hpp"
#include "graph/datasets.hpp"
#include "partition/dist_graph.hpp"
#include "partition/partition_io.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

namespace {
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  using namespace sg;
  const int gpus = 16;
  const auto dir =
      std::filesystem::temp_directory_path() / "scalegraph_partition_store";

  // ---- "Partitioning job": run once, persist the result. ----
  auto t0 = std::chrono::steady_clock::now();
  const auto g = graph::datasets::make("twitter50");
  const double gen_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  const auto dg = partition::partition_graph(
      g, {.policy = partition::Policy::CVC, .num_devices = gpus});
  const double part_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  partition::save_partition(dg, dir);
  const double save_ms = ms_since(t0);
  std::printf("partition job: generate %.0f ms, partition %.0f ms, "
              "save %.0f ms -> %s\n",
              gen_ms, part_ms, save_ms, dir.c_str());

  // ---- "Application": load the stored partition directly. ----
  t0 = std::chrono::steady_clock::now();
  const auto loaded = partition::load_partition(dir);
  const double load_ms = ms_since(t0);
  std::printf("application: loaded %d-device partition in %.0f ms "
              "(replication %.2f, policy %s)\n",
              loaded.num_devices(), load_ms,
              loaded.stats().replication_factor,
              partition::to_string(loaded.options().policy));

  // Both paths must produce identical results and identical simulated
  // performance.
  const auto topo = sim::Topology::bridges(gpus);
  const auto params = sim::CostParams::for_scaled_datasets();
  const engine::EngineConfig config;
  const auto src = graph::datasets::default_source(g);

  const comm::SyncStructure sync_orig(dg);
  const comm::SyncStructure sync_loaded(loaded);
  const auto a = algo::run_bfs(dg, sync_orig, topo, params, config, src);
  const auto b =
      algo::run_bfs(loaded, sync_loaded, topo, params, config, src);
  std::printf("bfs identical: %s (simulated %.4f ms vs %.4f ms)\n",
              a.dist == b.dist ? "yes" : "NO",
              a.stats.total_time.millis(), b.stats.total_time.millis());

  std::filesystem::remove_all(dir);
  return a.dist == b.dist ? 0 : 1;
}
