// Social-network scaling study: strong scaling of connected components
// and bfs on the friendster analogue from 2 to 64 simulated GPUs,
// comparing bulk-synchronous vs bulk-asynchronous execution and
// reporting parallel efficiency.
//
// Build & run:  ./build/examples/social_scaling
#include <cstdio>

#include "algo/cc.hpp"
#include "algo/bfs.hpp"
#include "comm/sync_structure.hpp"
#include "graph/datasets.hpp"
#include "partition/dist_graph.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace sg;

  const auto g = graph::datasets::make("friendster");
  std::printf("friendster analogue: %u vertices, %llu edges\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const auto params = sim::CostParams::for_scaled_datasets();
  const auto source = graph::datasets::default_source(g);

  engine::EngineConfig sync_cfg;
  sync_cfg.exec_model = engine::ExecModel::kSync;
  engine::EngineConfig async_cfg;
  async_cfg.exec_model = engine::ExecModel::kAsync;

  std::printf("%-6s | %12s %12s %10s | %12s %12s\n", "gpus", "cc-BSP(ms)",
              "cc-BASP(ms)", "eff(BASP)", "bfs-BSP(ms)", "bfs-BASP(ms)");
  double base_cc_async = 0;
  for (int gpus : {2, 4, 8, 16, 32, 64}) {
    const auto dg = partition::partition_graph(
        g, {.policy = partition::Policy::CVC, .num_devices = gpus});
    const comm::SyncStructure sync(dg);
    const auto topo = sim::Topology::bridges(gpus);

    const auto cc_s = algo::run_cc(dg, sync, topo, params, sync_cfg);
    const auto cc_a = algo::run_cc(dg, sync, topo, params, async_cfg);
    const auto bfs_s =
        algo::run_bfs(dg, sync, topo, params, sync_cfg, source);
    const auto bfs_a =
        algo::run_bfs(dg, sync, topo, params, async_cfg, source);

    if (gpus == 2) base_cc_async = cc_a.stats.total_time.seconds() * 2;
    const double eff = base_cc_async /
                       (cc_a.stats.total_time.seconds() * gpus);
    std::printf("%-6d | %12.4f %12.4f %9.0f%% | %12.4f %12.4f\n", gpus,
                cc_s.stats.total_time.millis(),
                cc_a.stats.total_time.millis(), eff * 100,
                bfs_s.stats.total_time.millis(),
                bfs_a.stats.total_time.millis());
  }

  std::printf(
      "\nNotes: efficiency is relative to the 2-GPU BASP run. Strong\n"
      "scaling flattens once per-device work no longer amortizes the\n"
      "per-round communication - exactly the regime where the paper's\n"
      "partitioning-policy and sync-mode choices start to matter.\n");
  return 0;
}
