// Policy explorer: a small CLI over the full public API. Pick a dataset
// analogue, benchmark, partitioning policy, device count, and execution
// model; get the result summary and the simulated performance breakdown.
//
//   ./build/examples/policy_explorer [dataset] [benchmark] [policy]
//                                    [gpus] [sync|async]
//   e.g. ./build/examples/policy_explorer twitter50 pagerank CVC 32 async
//
// Run with no arguments for a sensible default.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fw/benchmark.hpp"
#include "fw/dirgl.hpp"
#include "graph/datasets.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace sg;

  const std::string dataset = argc > 1 ? argv[1] : "twitter50";
  const std::string bench_name = argc > 2 ? argv[2] : "bfs";
  const std::string policy_name = argc > 3 ? argv[3] : "CVC";
  const int gpus = argc > 4 ? std::atoi(argv[4]) : 16;
  const std::string model = argc > 5 ? argv[5] : "async";

  try {
    const auto bench = fw::benchmark_from_string(bench_name);
    const auto policy = partition::policy_from_string(policy_name);
    const auto& g = bench == fw::Benchmark::kSssp
                        ? graph::datasets::make_weighted(dataset)
                        : graph::datasets::make(dataset);

    std::printf("dataset %s: %u vertices, %llu edges\n", dataset.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
    std::printf("running %s with %s on %d simulated P100s (%s)...\n",
                bench_name.c_str(), partition::to_string(policy), gpus,
                model.c_str());

    const auto prep = fw::prepare(g, policy, gpus);
    std::printf("partition: replication %.2f, static balance %.2f\n",
                prep.dist.stats().replication_factor,
                prep.dist.stats().static_balance);

    auto config = fw::DIrGL::default_config();
    config.exec_model = model == "sync" ? engine::ExecModel::kSync
                                        : engine::ExecModel::kAsync;
    fw::RunParams rp;
    rp.kcore_k = static_cast<std::uint32_t>(
        std::max<graph::EdgeId>(4, g.num_edges() / g.num_vertices()));
    const auto r =
        fw::DIrGL::run(bench, prep, sim::Topology::bridges(gpus),
                       sim::CostParams::for_scaled_datasets(), config, rp);
    if (!r.ok) {
      std::printf("run failed: %s\n", r.error.c_str());
      return 1;
    }

    std::printf("\nsimulated execution time: %.4f ms\n",
                r.stats.total_time.millis());
    std::printf("  max compute      %.4f ms\n",
                r.stats.max_compute().millis());
    std::printf("  device comm      %.4f ms\n",
                r.stats.max_device_comm().millis());
    std::printf("  min wait         %.4f ms\n", r.stats.min_wait().millis());
    std::printf("rounds %u | work items %llu | messages %llu | volume "
                "%.2f MB | peak memory %.2f MB\n",
                r.stats.global_rounds,
                static_cast<unsigned long long>(r.stats.total_work()),
                static_cast<unsigned long long>(r.stats.comm.messages),
                static_cast<double>(r.stats.comm.total_volume()) / 1e6,
                static_cast<double>(r.stats.max_memory()) / 1e6);
    std::printf("dynamic balance %.2f | memory balance %.2f\n",
                r.stats.dynamic_balance(), r.stats.memory_balance());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: %s [dataset] [bfs|cc|kcore|pagerank|sssp] "
                 "[OEC|IEC|HVC|CVC|RANDOM|GREEDY] [gpus] [sync|async]\n",
                 argv[0]);
    return 2;
  }
}
