// sg_serve: multi-tenant serving-workload replayer for the batched
// point-query scheduler (src/serve/). Builds a seeded synthetic social
// graph, partitions it across simulated GPUs, generates an open-loop
// Poisson multi-tenant query trace on the simulated clock, and replays
// it through serve::BatchScheduler. Everything is seeded, so two runs
// with the same flags emit byte-identical serving reports — CI runs the
// tool twice and compares.
//
// Usage:
//   sg_serve [--queries N] [--tenants N] [--seed N] [--rate QPS]
//            [--tenant-skew X] [--source-pool N] [--batch-width N]
//            [--ppr-width N] [--devices N] [--policy OEC|IEC|HVC|CVC]
//            [--async] [--report FILE] [--verify] [--min-speedup X]
//
//   --queries N      workload size (default 1200)
//   --tenants N      tenant count (default 6, Zipf-skewed)
//   --seed N         workload seed (default 42)
//   --rate QPS       aggregate arrival rate on the simulated clock
//   --tenant-skew X  Zipf exponent over tenants
//   --source-pool N  distinct landmark sources the workload draws from
//   --batch-width N  msbfs lanes per fused run (<= 64)
//   --ppr-width N    batched-PPR lanes per fused run (<= 16)
//   --devices N      simulated GPUs (default 4)
//   --policy P       partition policy (default CVC)
//   --async          BASP executor instead of BSP
//   --report FILE    write the serving report JSON here (default stdout)
//   --host-time      measure real host wall time around the replay and
//                    append a nondeterministic-marked `host` section
//                    (wall_ms + queries_per_sec) to the report; off by
//                    default so byte-identity CI stays valid
//   --verify         check every served answer against sequential
//                    oracles AND assert the batched engine used at
//                    least --min-speedup fewer sweeps than one run per
//                    engine-served query would have; degraded answers
//                    (brownout) instead verify as sound upper bounds
//   --min-speedup X  sweep-reduction floor for --verify (default 8)
//   --overload X     multiply the arrival rate by X (overload drills)
//   --brownout       arm the brownout degradation controller
//   --reshard N      arm elastic tenant resharding across N shard homes
//   --lifecycle      arm the fault-tolerant query lifecycle (timeouts,
//                    retries, hedged re-dispatch)
//
// Exit codes: 0 = ok, 1 = verification failure, 2 = usage error.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/ppr.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "fw/benchmark.hpp"
#include "graph/generators.hpp"
#include "partition/policy.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"
#include "util/hash.hpp"

namespace {

using namespace sg;

/// Tolerance for PPR top-k scores vs the sequential reference: batched
/// lanes share a frontier, so float accumulation order differs from the
/// single-seed push; both converge to the same fixed point within the
/// push threshold's resolution.
constexpr double kPprScoreSlack = 50.0;  // x ppr_eps

struct Options {
  serve::WorkloadSpec workload;
  serve::ServeConfig serve{
      // Tenant 0 (the Zipf-heavy one, ~46% of the default workload)
      // gets an explicit clamp well below its offered rate, so the
      // token bucket visibly rejects its overflow while the small
      // tenants ride under the generous default — the admission story
      // the report's per-tenant rows are meant to show.
      .default_limits = {.rate_qps = 40000.0, .burst = 128.0,
                         .max_queued = 256},
      .tenant_limits = {{.rate_qps = 32000.0, .burst = 80.0,
                         .max_queued = 256}}};
  int devices = 4;
  partition::Policy policy = partition::Policy::CVC;
  bool async = false;
  bool verify = false;
  bool host_time = false;
  double min_speedup = 8.0;
  double overload = 1.0;
  std::string report_path;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--queries N] [--tenants N] [--seed N] [--rate QPS]"
               " [--tenant-skew X]\n"
               "          [--source-pool N] [--batch-width N] [--ppr-width N]"
               " [--devices N]\n"
               "          [--policy OEC|IEC|HVC|CVC] [--async]"
               " [--report FILE] [--verify]\n"
               "          [--min-speedup X] [--host-time] [--overload X]\n"
               "          [--brownout] [--reshard N] [--lifecycle]\n",
               argv0);
  return 2;
}

const graph::Csr& serve_graph() {
  // A social-style community graph, symmetric so every landmark reaches
  // most of the graph, with randomized weights for the sssp family
  // (bfs/ppr ignore them).
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 2048;
    s.edges = 12000;
    s.zipf_out = 0.6;
    s.zipf_in = 0.6;
    s.communities = 4;
    s.symmetric = true;
    s.seed = 11;
    return graph::add_symmetric_weights(graph::synthetic(s), 1, 64, 11);
  }();
  return g;
}

/// Oracle answer for one served query, memoized per (kind, source).
class Oracle {
 public:
  explicit Oracle(const graph::Csr& g, double alpha, double eps)
      : g_(g), alpha_(alpha), eps_(eps) {}

  const std::vector<std::uint32_t>& bfs(graph::VertexId s) {
    auto it = bfs_.find(s);
    if (it == bfs_.end()) {
      it = bfs_.emplace(s, algo::reference::bfs(g_, s)).first;
    }
    return it->second;
  }
  const std::vector<std::uint64_t>& sssp(graph::VertexId s) {
    auto it = sssp_.find(s);
    if (it == sssp_.end()) {
      it = sssp_.emplace(s, algo::reference::sssp(g_, s)).first;
    }
    return it->second;
  }
  const std::vector<double>& ppr(graph::VertexId s) {
    auto it = ppr_.find(s);
    if (it == ppr_.end()) {
      it = ppr_.emplace(s, algo::reference::ppr(g_, s, alpha_, eps_)).first;
    }
    return it->second;
  }

 private:
  const graph::Csr& g_;
  double alpha_;
  double eps_;
  std::map<graph::VertexId, std::vector<std::uint32_t>> bfs_;
  std::map<graph::VertexId, std::vector<std::uint64_t>> sssp_;
  std::map<graph::VertexId, std::vector<double>> ppr_;
};

/// Checks one served answer against the sequential oracle; returns an
/// empty string on success, a description on mismatch.
std::string check_answer(const serve::Query& q, const serve::Answer& a,
                         Oracle& oracle, double ppr_eps) {
  switch (q.kind) {
    case serve::QueryKind::kBfsDist: {
      const std::uint32_t d = oracle.bfs(q.source)[q.target];
      const std::uint64_t want =
          d == algo::kInfDist ? serve::kUnreachable : d;
      if (a.distance != want) {
        return "bfs-dist " + std::to_string(a.distance) + " want " +
               std::to_string(want);
      }
      return {};
    }
    case serve::QueryKind::kSsspDist: {
      const std::uint64_t want = oracle.sssp(q.source)[q.target];
      if (a.distance != want) {
        return "sssp-dist " + std::to_string(a.distance) + " want " +
               std::to_string(want);
      }
      return {};
    }
    case serve::QueryKind::kKhopCount: {
      const auto& dist = oracle.bfs(q.source);
      std::uint64_t count = 0;
      std::uint64_t digest = util::kFnv1aOffset;
      for (graph::VertexId v = 0; v < dist.size(); ++v) {
        if (dist[v] <= q.k) {
          ++count;
          digest = util::fnv1a64_value(v, digest);
        }
      }
      if (a.khop_count != count || a.khop_digest != digest) {
        return "khop " + std::to_string(a.khop_count) + "/" +
               std::to_string(a.khop_digest) + " want " +
               std::to_string(count) + "/" + std::to_string(digest);
      }
      return {};
    }
    case serve::QueryKind::kPprTopK: {
      const auto& mass = oracle.ppr(q.source);
      const double tol = kPprScoreSlack * ppr_eps;
      for (const serve::ScoredVertex& sv : a.topk) {
        const double diff = std::abs(sv.score - mass[sv.vertex]);
        if (diff > tol) {
          return "ppr score[" + std::to_string(sv.vertex) + "] = " +
                 std::to_string(sv.score) + " vs reference " +
                 std::to_string(mass[sv.vertex]) + " (diff " +
                 std::to_string(diff) + " > " + std::to_string(tol) + ")";
        }
      }
      if (a.topk.size() > q.k) {
        return "ppr top-k returned " + std::to_string(a.topk.size()) +
               " > k = " + std::to_string(q.k);
      }
      return {};
    }
  }
  return "unknown query kind";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sg_serve: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--queries") {
      const char* v = need_value("--queries");
      if (v == nullptr) return 2;
      opt.workload.num_queries = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--tenants") {
      const char* v = need_value("--tenants");
      if (v == nullptr) return 2;
      opt.workload.num_tenants = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) return 2;
      opt.workload.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--rate") {
      const char* v = need_value("--rate");
      if (v == nullptr) return 2;
      opt.workload.arrival_rate_qps = std::atof(v);
    } else if (a == "--tenant-skew") {
      const char* v = need_value("--tenant-skew");
      if (v == nullptr) return 2;
      opt.workload.tenant_skew = std::atof(v);
    } else if (a == "--source-pool") {
      const char* v = need_value("--source-pool");
      if (v == nullptr) return 2;
      opt.workload.source_pool = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--batch-width") {
      const char* v = need_value("--batch-width");
      if (v == nullptr) return 2;
      opt.serve.batch_width = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--ppr-width") {
      const char* v = need_value("--ppr-width");
      if (v == nullptr) return 2;
      opt.serve.ppr_batch_width = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--devices") {
      const char* v = need_value("--devices");
      if (v == nullptr) return 2;
      opt.devices = std::atoi(v);
    } else if (a == "--policy") {
      const char* v = need_value("--policy");
      if (v == nullptr) return 2;
      try {
        opt.policy = partition::policy_from_string(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_serve: %s\n", e.what());
        return 2;
      }
    } else if (a == "--async") {
      opt.async = true;
    } else if (a == "--report") {
      const char* v = need_value("--report");
      if (v == nullptr) return 2;
      opt.report_path = v;
    } else if (a == "--verify") {
      opt.verify = true;
    } else if (a == "--host-time") {
      opt.host_time = true;
    } else if (a == "--min-speedup") {
      const char* v = need_value("--min-speedup");
      if (v == nullptr) return 2;
      opt.min_speedup = std::atof(v);
    } else if (a == "--overload") {
      const char* v = need_value("--overload");
      if (v == nullptr) return 2;
      opt.overload = std::atof(v);
    } else if (a == "--brownout") {
      opt.serve.brownout.enabled = true;
    } else if (a == "--reshard") {
      const char* v = need_value("--reshard");
      if (v == nullptr) return 2;
      opt.serve.reshard.enabled = true;
      opt.serve.reshard.num_homes = static_cast<std::uint32_t>(std::atoi(v));
    } else if (a == "--lifecycle") {
      opt.serve.lifecycle.enabled = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "sg_serve: unknown flag %s\n", a.c_str());
      return usage(argv[0]);
    }
  }
  if (opt.devices < 1 || opt.workload.num_queries == 0 ||
      opt.overload <= 0.0) {
    return usage(argv[0]);
  }
  opt.workload.arrival_rate_qps *= opt.overload;

  const graph::Csr& g = serve_graph();
  const fw::Prepared prep = fw::prepare(g, opt.policy, opt.devices);
  const sim::Topology topo = sim::Topology::bridges(opt.devices, 400.0);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  const engine::EngineConfig engine_cfg = engine::make_variant(
      opt.async ? engine::Variant::kVar4 : engine::Variant::kVar3);

  const std::vector<serve::Query> trace =
      serve::generate_workload(opt.workload, g.num_vertices());
  opt.serve.record_batches = opt.verify;
  serve::BatchScheduler sched(prep.dist, prep.sync, topo, params, engine_cfg,
                              opt.serve);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<serve::Answer> answers = sched.run(trace);
  const double host_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  const serve::ServeReport& rep = sched.report();
  const serve::ResultCache::Stats& cs = sched.cache_stats();
  std::printf(
      "sg_serve: %llu queries, %zu tenants: admitted=%llu rejected=%llu "
      "served=%llu (cache %llu)\n",
      static_cast<unsigned long long>(rep.submitted), rep.tenants.size(),
      static_cast<unsigned long long>(rep.admitted),
      static_cast<unsigned long long>(rep.rejected),
      static_cast<unsigned long long>(rep.served),
      static_cast<unsigned long long>(rep.served_from_cache));
  std::printf(
      "sg_serve: engine runs=%llu sweeps=%llu lanes=%llu | cache h/m/e "
      "%llu/%llu/%llu | p50=%.1fus p99=%.1fus deadline-hit=%.3f\n",
      static_cast<unsigned long long>(rep.engine_runs),
      static_cast<unsigned long long>(rep.engine_sweeps),
      static_cast<unsigned long long>(rep.lanes_total),
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      static_cast<unsigned long long>(cs.evictions), rep.p50_latency_us,
      rep.p99_latency_us, rep.deadline_hit_ratio);

  if (opt.host_time) {
    std::printf("sg_serve: host wall %.1f ms (%.0f queries/sec)\n",
                host_wall_ms,
                host_wall_ms > 0.0
                    ? static_cast<double>(rep.served) / (host_wall_ms / 1e3)
                    : 0.0);
  }
  const std::string report =
      sched.report_json(opt.host_time ? host_wall_ms : -1.0);
  if (opt.report_path.empty()) {
    std::printf("%s\n", report.c_str());
  } else {
    std::ofstream out(opt.report_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "sg_serve: cannot write %s\n",
                   opt.report_path.c_str());
      return 2;
    }
    out.write(report.data(), static_cast<std::streamsize>(report.size()));
    out.put('\n');
  }

  if (!opt.verify) return 0;

  // 1. Every served answer must match the sequential oracle (msbfs
  //    lanes are bit-exact per source, so bfs-dist/khop answers must
  //    agree exactly; ppr scores within the documented tolerance).
  Oracle oracle(g, opt.serve.ppr_alpha, opt.serve.ppr_eps);
  std::uint64_t checked = 0;
  std::uint64_t degraded = 0;
  std::uint64_t wrong = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!answers[i].served) continue;
    ++checked;
    std::string err;
    if (answers[i].degraded) {
      // Brownout approximation: must be tagged, must be an s-t distance
      // query, and the landmark triangle bound must hold — a finite
      // upper bound on the true distance (soundness, not exactness).
      ++degraded;
      const serve::Query& q = trace[i];
      const std::uint64_t truth =
          q.kind == serve::QueryKind::kBfsDist
              ? (oracle.bfs(q.source)[q.target] == algo::kInfDist
                     ? serve::kUnreachable
                     : oracle.bfs(q.source)[q.target])
          : q.kind == serve::QueryKind::kSsspDist
              ? oracle.sssp(q.source)[q.target]
              : serve::kUnreachable;
      if (q.kind != serve::QueryKind::kBfsDist &&
          q.kind != serve::QueryKind::kSsspDist) {
        err = "degraded answer on a non-distance query kind";
      } else if (answers[i].distance == serve::kUnreachable) {
        err = "degraded answer is not a finite bound";
      } else if (truth == serve::kUnreachable ||
                 answers[i].distance < truth) {
        err = "degraded bound " + std::to_string(answers[i].distance) +
              " below true distance " + std::to_string(truth);
      }
    } else {
      err = check_answer(trace[i], answers[i], oracle, opt.serve.ppr_eps);
    }
    if (!err.empty()) {
      ++wrong;
      if (wrong <= 10) {
        std::fprintf(stderr, "sg_serve: query %llu (tenant %u): %s\n",
                     static_cast<unsigned long long>(trace[i].id),
                     trace[i].tenant, err.c_str());
      }
    }
  }
  std::printf(
      "sg_serve: verified %llu served answers (%llu degraded bounds), "
      "%llu wrong\n",
      static_cast<unsigned long long>(checked),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(wrong));

  // 2. Sweep-reduction: replay every recorded batch one lane at a time
  //    through the single-query engine programs and compare total
  //    engine sweeps (global rounds).
  std::uint64_t unbatched_sweeps = 0;
  std::uint64_t batched_sweeps = 0;
  for (const serve::BatchRecord& b : sched.batches()) {
    batched_sweeps += b.rounds;
    for (const graph::VertexId s : b.lane_sources) {
      switch (b.klass) {
        case serve::QueryKind::kBfsDist:
          unbatched_sweeps += algo::run_bfs(prep.dist, prep.sync, topo,
                                            params, engine_cfg, s)
                                  .stats.global_rounds;
          break;
        case serve::QueryKind::kPprTopK:
          unbatched_sweeps +=
              algo::run_ppr(prep.dist, prep.sync, topo, params, engine_cfg,
                            s, opt.serve.ppr_alpha, opt.serve.ppr_eps)
                  .stats.global_rounds;
          break;
        default:
          unbatched_sweeps += algo::run_sssp(prep.dist, prep.sync, topo,
                                             params, engine_cfg, s)
                                  .stats.global_rounds;
          break;
      }
    }
  }
  const double speedup =
      batched_sweeps > 0 ? static_cast<double>(unbatched_sweeps) /
                               static_cast<double>(batched_sweeps)
                         : 0.0;
  std::printf("sg_serve: sweeps batched=%llu unbatched=%llu reduction=%.2fx "
              "(floor %.2fx)\n",
              static_cast<unsigned long long>(batched_sweeps),
              static_cast<unsigned long long>(unbatched_sweeps), speedup,
              opt.min_speedup);

  if (wrong > 0) {
    std::fprintf(stderr, "sg_serve: FAIL: %llu wrong answers\n",
                 static_cast<unsigned long long>(wrong));
    return 1;
  }
  if (speedup < opt.min_speedup) {
    std::fprintf(stderr,
                 "sg_serve: FAIL: sweep reduction %.2fx below floor %.2fx\n",
                 speedup, opt.min_speedup);
    return 1;
  }
  std::printf("sg_serve: verification passed\n");
  return 0;
}
