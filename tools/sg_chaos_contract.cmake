# ctest script: end-to-end check of sg_chaos's documented contract.
#
#  - `--smoke` with the wire protocol on matches the fault-free oracle
#    in every scenario (exit 0).
#  - `--smoke --inject-defect` (wire protocol off) fails, shrinks the
#    failing plan to a reproducer of at most 3 fault events, and writes
#    it as JSON (exit 1).
#  - `--replay <reproducer>` reproduces the recorded failure (exit 1).
#  - Usage errors exit 2.
#
# Invoked as:
#   cmake -DTOOL=<sg_chaos binary> -DWORK=<scratch dir> -P this_file

if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "TOOL and WORK must be defined")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

# 2: usage errors (unknown flag, flag missing its value, bogus replay).
foreach(args "--bogus" "--chaos-seed" "--replay;${WORK}/missing.json")
  execute_process(COMMAND "${TOOL}" ${args} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
      "sg_chaos ${args}: expected exit 2, got ${rc}\n${out}${err}")
  endif()
endforeach()

# 0: the protected smoke soak matches its oracle everywhere.
execute_process(COMMAND "${TOOL}" --smoke --out-dir "${WORK}/clean"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "sg_chaos --smoke: expected exit 0, got ${rc}\n${out}${err}")
endif()
file(GLOB stray "${WORK}/clean/chaos_repro_*.json")
if(stray)
  message(FATAL_ERROR "clean smoke soak wrote reproducers: ${stray}")
endif()

# 1: with the wire protocol disabled the same soak must catch the
# unprotected reducers and write a shrunk reproducer.
execute_process(COMMAND "${TOOL}" --smoke --inject-defect
                        --out-dir "${WORK}/defect"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "sg_chaos --smoke --inject-defect: expected exit 1, got ${rc}\n"
    "${out}${err}")
endif()
file(GLOB repros "${WORK}/defect/chaos_repro_*.json")
list(LENGTH repros n_repros)
if(n_repros EQUAL 0)
  message(FATAL_ERROR "defect soak failed but wrote no reproducer\n${out}")
endif()
list(GET repros 0 repro)

# The reproducer replays to the same failure, and the shrunk plan has at
# most 3 events (the replay banner prints the count).
execute_process(COMMAND "${TOOL}" --replay "${repro}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "sg_chaos --replay ${repro}: expected exit 1 (reproduced), got ${rc}\n"
    "${out}${err}")
endif()
if(NOT out MATCHES "reproduced:")
  message(FATAL_ERROR "replay did not report the failure:\n${out}")
endif()
if(NOT out MATCHES "plan events: [123]\n")
  message(FATAL_ERROR
    "shrunk reproducer should have <= 3 events:\n${out}")
endif()

# Replay twice: byte-determinism of the replay verdict.
execute_process(COMMAND "${TOOL}" --replay "${repro}"
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2)
if(NOT out STREQUAL out2)
  message(FATAL_ERROR "replay output is not deterministic")
endif()

# 0: the SDC soak (oracle / unaudited twin / audited kRepair triple)
# passes everywhere — no undetected wrong answers, bit-exact repairs,
# bounded detection lag.
execute_process(COMMAND "${TOOL}" --sdc --smoke --out-dir "${WORK}/sdc"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "sg_chaos --sdc --smoke: expected exit 0, got ${rc}\n${out}${err}")
endif()
file(GLOB stray "${WORK}/sdc/chaos_repro_*.json")
if(stray)
  message(FATAL_ERROR "clean sdc soak wrote reproducers: ${stray}")
endif()

# 1: with the auditor disabled (AuditMode::kOff) the same bit flips
# must ship a wrong answer the harness catches, and the shrunk
# sdc-tagged reproducer must replay to the same failure.
execute_process(COMMAND "${TOOL}" --sdc --smoke --inject-defect
                        --out-dir "${WORK}/sdc_defect"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "sg_chaos --sdc --smoke --inject-defect: expected exit 1, got ${rc}\n"
    "${out}${err}")
endif()
file(GLOB sdc_repros "${WORK}/sdc_defect/chaos_repro_sdc_*.json")
list(LENGTH sdc_repros n_sdc)
if(n_sdc EQUAL 0)
  message(FATAL_ERROR "sdc defect soak failed but wrote no reproducer\n${out}")
endif()
list(GET sdc_repros 0 sdc_repro)
execute_process(COMMAND "${TOOL}" --replay "${sdc_repro}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "sg_chaos --replay ${sdc_repro}: expected exit 1 (reproduced), got "
    "${rc}\n${out}${err}")
endif()
if(NOT out MATCHES "sdc triple")
  message(FATAL_ERROR "sdc replay did not run the audited triple:\n${out}")
endif()

message(STATUS "sg_chaos contract: all checks passed")
