// sg_explain: critical-path analysis and bottleneck attribution over an
// exported scalegraph Chrome trace (the --trace output of the bench
// binaries). Walks the causal span DAG and reports where the simulated
// end-to-end time actually went: the paper's compute / device-host /
// inter-host / wait breakdown measured on the critical path, per-device
// blame and slack, top-k bottleneck spans, straggler ranking, and
// rule-based tuning hints. Output is deterministic: identical traces
// give byte-identical reports.
//
// --flight switches to black-box mode: the positional file is a flight
// recorder dump (written by sg_chaos next to its reproducers, by the
// engine's abort hook, or on demand via $SG_FLIGHT_DUMP) and sg_explain
// renders the event timeline plus a per-kind summary instead of a
// critical-path report.
//
//   sg_explain <trace.json> [--json] [--top K]
//   sg_explain --flight <dump.json> [--json]
//
// Exit codes: 0 = report written, 2 = usage / I/O / schema error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "obs/critpath.hpp"
#include "obs/flight.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--json] [--top K]\n"
               "       %s --flight <dump.json> [--json]\n",
               argv0, argv0);
}

/// Renders a flight-recorder dump as a deterministic event table (text)
/// or a summary document (--json). Returns the process exit code.
int render_flight(const std::string& path, const std::string& text,
                  bool json) {
  sg::obs::JsonValue doc;
  try {
    doc = sg::obs::parse_json(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_explain: %s: %s\n", path.c_str(), e.what());
    return 2;
  }
  const sg::obs::JsonValue* schema = doc.find("sg_flight_schema");
  if (schema == nullptr ||
      static_cast<int>(schema->num_or(-1)) != sg::obs::kFlightSchemaVersion) {
    std::fprintf(stderr,
                 "sg_explain: %s: not a flight dump (sg_flight_schema %d "
                 "expected)\n",
                 path.c_str(), sg::obs::kFlightSchemaVersion);
    return 2;
  }
  const sg::obs::JsonValue* flight = doc.find("flight");
  const sg::obs::JsonValue* events = doc.find("flight.events");
  if (flight == nullptr || !flight->is_object() || events == nullptr ||
      !events->is_array()) {
    std::fprintf(stderr, "sg_explain: %s: flight dump has no events array\n",
                 path.c_str());
    return 2;
  }
  const std::string trigger =
      doc.find("trigger") != nullptr
          ? doc.find("trigger")->str_or("(unknown)")
          : std::string("(unknown)");
  auto num_field = [&](const char* key, double dflt) {
    const sg::obs::JsonValue* v = flight->find(key);
    return v != nullptr ? v->num_or(dflt) : dflt;
  };
  const auto capacity = static_cast<std::uint64_t>(num_field("capacity", 0));
  const auto dropped = static_cast<std::uint64_t>(num_field("dropped", 0));
  const bool has_wall =
      !events->array.empty() &&
      events->array.front().find("wall_ns") != nullptr;

  // Per-kind histogram (name-sorted via std::map, so output order is
  // deterministic regardless of event order in the dump).
  std::map<std::string, std::uint64_t> kinds;
  for (const auto& e : events->array) {
    const sg::obs::JsonValue* k = e.find("kind");
    kinds[k != nullptr ? k->str_or("?") : "?"] += 1;
  }

  if (json) {
    sg::obs::JsonWriter w;
    w.begin_object();
    w.kv("sg_flight_schema", sg::obs::kFlightSchemaVersion);
    w.kv("trigger", trigger);
    w.kv("capacity", capacity);
    w.kv("recorded", static_cast<std::uint64_t>(events->array.size()));
    w.kv("dropped", dropped);
    w.key("kinds").begin_object();
    for (const auto& [name, count] : kinds) w.kv(name.c_str(), count);
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  std::printf("flight dump: %s\n", path.c_str());
  std::printf("  trigger=%s  events=%zu  capacity=%llu  dropped=%llu\n",
              trigger.c_str(), events->array.size(),
              static_cast<unsigned long long>(capacity),
              static_cast<unsigned long long>(dropped));
  if (dropped > 0) {
    std::printf("  (ring wrapped: the %llu oldest events were overwritten)\n",
                static_cast<unsigned long long>(dropped));
  }
  std::printf("  %12s  %-12s %4s  %12s  %12s  %s\n", "t_us", "kind", "dev",
              "a", "b", "detail");
  for (const auto& e : events->array) {
    auto field_num = [&](const char* key) {
      const sg::obs::JsonValue* v = e.find(key);
      return v != nullptr ? static_cast<long long>(v->num_or(0)) : 0LL;
    };
    auto field_str = [&](const char* key) {
      const sg::obs::JsonValue* v = e.find(key);
      return v != nullptr ? v->str_or("") : std::string();
    };
    std::printf("  %12lld  %-12s %4lld  %12lld  %12lld  %s\n",
                field_num("t_us"), field_str("kind").c_str(),
                field_num("device"), field_num("a"), field_num("b"),
                field_str("detail").c_str());
  }
  std::printf("per-kind:");
  for (const auto& [name, count] : kinds) {
    std::printf(" %s=%llu", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  if (has_wall) {
    std::printf("(black-box dump: raw record order, host timestamps "
                "included)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  bool flight = false;
  sg::obs::ExplainOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight = true;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      opts.top_k = std::atoi(argv[++i]);
      if (opts.top_k <= 0) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "sg_explain: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  if (flight) {
    return render_flight(path, ss.str(), json);
  }

  sg::obs::TraceView view;
  try {
    view = sg::obs::TraceView::from_chrome_trace(
        sg::obs::parse_json(ss.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_explain: %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  const sg::obs::CpAnalysis analysis = sg::obs::analyze_critical_path(view);
  if (json) {
    std::cout << sg::obs::render_explain_json(view, analysis, opts) << "\n";
  } else {
    sg::obs::render_explain_text(std::cout, view, analysis, opts);
  }
  return 0;
}
