// sg_explain: critical-path analysis and bottleneck attribution over an
// exported scalegraph Chrome trace (the --trace output of the bench
// binaries). Walks the causal span DAG and reports where the simulated
// end-to-end time actually went: the paper's compute / device-host /
// inter-host / wait breakdown measured on the critical path, per-device
// blame and slack, top-k bottleneck spans, straggler ranking, and
// rule-based tuning hints. Output is deterministic: identical traces
// give byte-identical reports.
//
//   sg_explain <trace.json> [--json] [--top K]
//
// Exit codes: 0 = report written, 2 = usage / I/O / schema error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/critpath.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <trace.json> [--json] [--top K]\n", argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  sg::obs::ExplainOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      opts.top_k = std::atoi(argv[++i]);
      if (opts.top_k <= 0) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "sg_explain: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  sg::obs::TraceView view;
  try {
    view = sg::obs::TraceView::from_chrome_trace(
        sg::obs::parse_json(ss.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_explain: %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  const sg::obs::CpAnalysis analysis = sg::obs::analyze_critical_path(view);
  if (json) {
    std::cout << sg::obs::render_explain_json(view, analysis, opts) << "\n";
  } else {
    sg::obs::render_explain_text(std::cout, view, analysis, opts);
  }
  return 0;
}
