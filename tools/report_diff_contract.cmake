# ctest script: end-to-end check of report_diff's documented exit-code
# contract (0 = no regressions, 1 = regressions or missing runs,
# 2 = usage / schema error) and of the --json output schema.
#
# Invoked as:
#   cmake -DTOOL=<report_diff binary> -DWORK=<scratch dir> -P this_file

if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "TOOL and WORK must be defined")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(make_report path time)
  file(WRITE "${path}" "{\"schema_version\":1,\"generator\":\"scalegraph\",\
\"bench\":\"contract\",\"runs\":[{\"meta\":{\"label\":\"bfs/x/Sys/cfg/4\"},\
\"stats\":{\"total_time_s\":${time},\"global_rounds\":10,\
\"comm\":{\"total_volume_bytes\":1000}}}]}")
endfunction()

make_report("${WORK}/base.json" 1.0)
make_report("${WORK}/same.json" 1.0)
make_report("${WORK}/slow.json" 2.0)
file(WRITE "${WORK}/garbage.json" "this is not json")

function(expect_exit code)
  # Remaining args: the report_diff argument list.
  execute_process(COMMAND "${TOOL}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${code})
    message(FATAL_ERROR
      "report_diff ${ARGN}: expected exit ${code}, got ${rc}\n${out}${err}")
  endif()
endfunction()

# 0: identical reports are clean.
expect_exit(0 "${WORK}/base.json" "${WORK}/same.json")
# 1: 2x slower run regresses past the default threshold.
expect_exit(1 "${WORK}/base.json" "${WORK}/slow.json")
# 0: a huge threshold forgives the regression.
expect_exit(0 "${WORK}/base.json" "${WORK}/slow.json" --threshold 2.0)
# 2: usage errors (missing file operand, unknown flag, missing value).
expect_exit(2)
expect_exit(2 "${WORK}/base.json")
expect_exit(2 "${WORK}/base.json" "${WORK}/same.json" --bogus)
expect_exit(2 "${WORK}/base.json" "${WORK}/same.json" --threshold)
# 2: unparseable / non-report inputs.
expect_exit(2 "${WORK}/garbage.json" "${WORK}/same.json")
expect_exit(2 "${WORK}/base.json" "${WORK}/missing-file.json")

# --json keeps the exit-code contract and emits the documented schema.
execute_process(COMMAND "${TOOL}" "${WORK}/base.json" "${WORK}/slow.json" --json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "--json regression run: expected exit 1, got ${rc}")
endif()
foreach(needle
    "\"report_diff_schema\":1" "\"regressions\":" "\"items\":"
    "\"metric\":\"total_time_s\"" "\"regressed\":true" "\"missing_runs\":")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "--json output missing ${needle}:\n${out}")
  endif()
endforeach()

# Determinism: two invocations produce byte-identical JSON.
execute_process(COMMAND "${TOOL}" "${WORK}/base.json" "${WORK}/slow.json" --json
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2)
if(NOT out STREQUAL out2)
  message(FATAL_ERROR "--json output is not deterministic")
endif()

message(STATUS "report_diff contract: all checks passed")
