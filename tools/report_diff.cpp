// report_diff: compares two scalegraph run-report JSON files and flags
// regressions on total_time / communication volume / rounds beyond a
// relative threshold. Exit codes: 0 = no regressions, 1 = regressions
// (or runs missing from the current report), 2 = usage or I/O error.
// --json swaps the text table for a machine-readable document (same
// exit-code contract).
//
// --rel-tolerance F additionally compares the nondeterministic
// host_time.host_wall_ms metric under its own (generous) band; without
// it host time is never diffed, so simulated-time gating stays
// flake-free. --band metric=F (repeatable) overrides the threshold of
// one metric by name — naming host_wall_ms also enables it.
//
//   report_diff baseline.json current.json [--threshold 0.05]
//               [--rel-tolerance 5.0] [--band host_wall_ms=8.0] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> "
               "[--threshold FRACTION] [--rel-tolerance FRACTION] "
               "[--band METRIC=FRACTION]... [--json]\n",
               argv0);
}

void print_json(const sg::obs::DiffResult& res,
                const sg::obs::DiffOptions& opts) {
  sg::obs::JsonWriter w;
  w.begin_object();
  w.kv("report_diff_schema", 1);
  w.kv("threshold", opts.threshold);
  if (opts.rel_tolerance >= 0.0) {
    w.kv("rel_tolerance", opts.rel_tolerance);
  }
  if (!opts.bands.empty()) {
    w.key("bands").begin_object();
    for (const auto& [name, tol] : opts.bands) w.kv(name.c_str(), tol);
    w.end_object();
  }
  w.kv("regressions", res.regressions());
  w.key("items").begin_array();
  for (const auto& item : res.items) {
    w.begin_object();
    w.kv("run", item.run);
    w.kv("metric", item.metric);
    w.kv("baseline", item.baseline);
    w.kv("current", item.current);
    w.kv("rel_delta", item.rel_delta);
    w.kv("regressed", item.regressed);
    w.end_object();
  }
  w.end_array();
  w.key("missing_runs").begin_array();
  for (const auto& label : res.missing_runs) w.value(label);
  w.end_array();
  w.key("new_runs").begin_array();
  for (const auto& label : res.new_runs) w.value(label);
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool json = false;
  sg::obs::DiffOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      opts.threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rel-tolerance") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      opts.rel_tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--band") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "report_diff: --band expects METRIC=FRACTION, "
                             "got '%s'\n",
                     spec.c_str());
        return 2;
      }
      opts.bands.emplace_back(spec.substr(0, eq),
                              std::atof(spec.c_str() + eq + 1));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      usage(argv[0]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    usage(argv[0]);
    return 2;
  }

  const sg::obs::DiffResult res =
      sg::obs::diff_report_files(paths[0], paths[1], opts);
  if (!res.ok) {
    std::fprintf(stderr, "report_diff: %s\n", res.error.c_str());
    return 2;
  }
  if (json) {
    print_json(res, opts);
    return res.regressions() > 0 || !res.missing_runs.empty() ? 1 : 0;
  }

  std::printf("report_diff: baseline=%s current=%s threshold=%.1f%%",
              paths[0].c_str(), paths[1].c_str(), opts.threshold * 100.0);
  if (opts.rel_tolerance >= 0.0) {
    std::printf(" rel_tolerance=%.1f%%", opts.rel_tolerance * 100.0);
  }
  std::printf("\n");
  std::size_t compared = 0;
  for (const auto& item : res.items) {
    ++compared;
    std::printf("  %-48s %-18s %12g -> %-12g (%+.2f%%)  %s\n",
                item.run.c_str(), item.metric.c_str(), item.baseline,
                item.current, item.rel_delta * 100.0,
                item.regressed ? "REGRESSION" : "ok");
  }
  for (const auto& label : res.missing_runs) {
    std::printf("  %-48s MISSING from current report\n", label.c_str());
  }
  for (const auto& label : res.new_runs) {
    std::printf("  %-48s new in current report (not compared)\n",
                label.c_str());
  }
  const int regressions = res.regressions();
  std::printf("%d regression(s), %zu metric(s) compared, %zu run(s) "
              "missing\n",
              regressions, compared, res.missing_runs.size());
  return regressions > 0 || !res.missing_runs.empty() ? 1 : 0;
}
