// sg_chaos: chaos soak harness for the Byzantine-network tolerance
// stack. Generates seeded random fault plans (message drops, payload
// corruption, duplication, reordering, stragglers, network partitions)
// over a scenario matrix (benchmark x partition policy x BSP/BASP x
// device count), runs each against a fault-free oracle of the same
// scenario, and on any divergence greedily shrinks the plan to a
// minimal reproducer serialized as replayable JSON.
//
// Usage:
//   sg_chaos [--smoke] [--chaos-seed N] [--seeds N] [--no-shrink]
//            [--inject-defect] [--keep-going] [--out-dir DIR]
//   sg_chaos --replay FILE
//
//   --smoke          reduced scenario matrix, one plan per scenario
//   --chaos-seed N   base seed for plan generation (default 1)
//   --seeds N        plans per scenario (default 1 smoke, 2 full)
//   --chaos-shrink / --no-shrink
//                    shrink failing plans to minimal reproducers
//                    (default on)
//   --inject-defect  disable the wire protocol (EngineConfig::
//                    wire_protocol=false): anomalies hit the reducers
//                    unprotected, so the soak MUST fail and emit a
//                    shrunk reproducer — the harness's self-test
//   --keep-going     do not stop at the first failing scenario
//   --out-dir DIR    where reproducer JSON files are written (default .)
//   --replay FILE    re-run a reproducer written by a previous soak
//
// Exit codes: 0 = all scenarios matched their oracle (or a replay did
// not reproduce), 1 = at least one failure (reproducer written) or a
// replay reproduced its failure, 2 = usage or harness error.
//
// Oracle contract: bfs/cc/sssp/kcore results must be bit-identical to
// the fault-free run, including through partition-triggered evictions
// (idempotent programs recover exactly). Pagerank ranks are compared
// within a documented relative tolerance (anomaly-shifted arrival
// times permute float reductions); after an eviction the re-homed
// accumulator converges to a validly different fixed point, so evicted
// pagerank runs are held to invariants instead (finite, above the
// teleport base, total mass in the oracle's ballpark). BASP runs must
// additionally report clean Safra termination.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/config.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "fw/benchmark.hpp"
#include "fw/dirgl.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "partition/policy.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

namespace {

using namespace sg;

/// Relative tolerance for pagerank rank comparison (with a floor of
/// 1.0 on the scale, since ranks start at 1-alpha and are unnormalised
/// so hubs grow large): both runs converge to within pr_tolerance of
/// the fixed point, but fault-shifted arrival orders permute float
/// additions, so the two converged states may differ by a multiple of
/// the residual bound.
constexpr double kRankTolerance = 1e-3;

/// Once a device was evicted the elementwise comparison no longer
/// applies: a partition that outlasts detection rolls back to a
/// checkpoint and re-homes masters onto the survivors, and the
/// re-converged accumulator state is a validly different fixed point
/// (exact recovery is guaranteed — and soaked here — only for the
/// idempotent benchmarks). Evicted pagerank runs are instead held to
/// invariants: every rank finite and at least the teleport base
/// (1 - alpha), and total rank mass within this slack of the oracle's.
constexpr double kEvictedMassSlack = 0.25;

/// Per-vertex rank floor for evicted runs: the teleport term
/// (1 - pr_alpha) every vertex earns unconditionally, minus float fuzz.
constexpr double kRankFloor = 0.15 - 1e-3;

/// Per-device memory scale for the soak topologies. Generous (the
/// bench default) so that eviction-triggered re-homing always finds a
/// survivor with room for the orphaned masters, even when a plan
/// partitions away a whole host.
constexpr double kMemScale = 400.0;

struct Scenario {
  fw::Benchmark bench = fw::Benchmark::kBfs;
  partition::Policy policy = partition::Policy::OEC;
  engine::ExecModel model = engine::ExecModel::kSync;
  int devices = 4;
};

std::string label_of(const Scenario& s) {
  return std::string(fw::to_string(s.bench)) + "/" +
         partition::to_string(s.policy) + "/" +
         engine::to_string(s.model) + "/" + std::to_string(s.devices);
}

struct Options {
  bool smoke = false;
  std::uint64_t seed = 1;
  int seeds_per_scenario = -1;  // -1: 1 for smoke, 2 for full
  bool shrink = true;
  bool inject_defect = false;
  bool keep_going = false;
  std::string out_dir = ".";
  std::string replay;
};

const graph::Csr& chaos_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 600;
    s.edges = 5000;
    s.zipf_out = 0.7;
    s.zipf_in = 0.8;
    s.hub_in_frac = 0.05;
    s.communities = 3;
    s.seed = 7;
    return graph::synthetic(s);
  }();
  return g;
}

const fw::Prepared& prepared_for(partition::Policy policy, int devices) {
  static std::map<std::string, fw::Prepared> cache;
  const std::string key =
      std::string(partition::to_string(policy)) + "/" +
      std::to_string(devices);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, fw::prepare(chaos_graph(), policy, devices))
             .first;
  }
  return it->second;
}

fw::BenchmarkRun run_scenario(const Scenario& s,
                              const fault::FaultPlan* plan,
                              bool wire_protocol) {
  const fw::Prepared& prep = prepared_for(s.policy, s.devices);
  const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  engine::EngineConfig cfg = engine::make_variant(
      s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                          : engine::Variant::kVar4);
  cfg.wire_protocol = wire_protocol;
  cfg.fault_plan = plan;
  // Accumulator programs need checkpoints for exact recovery should a
  // partition outlast detection and evict its minority side.
  if (s.bench == fw::Benchmark::kPagerank) {
    cfg.checkpoint.interval_rounds = 1;
  }
  return fw::DIrGL::run(s.bench, prep, topo, params, cfg);
}

struct Outcome {
  std::string kind;  ///< empty = scenario matched its oracle
  std::string detail;
  [[nodiscard]] bool failed() const { return !kind.empty(); }
};

template <typename T>
Outcome compare_exact(const std::vector<T>& oracle,
                      const std::vector<T>& got, const char* what) {
  if (oracle.size() != got.size()) {
    return {"labels-mismatch",
            std::string(what) + " size " + std::to_string(got.size()) +
                " vs oracle " + std::to_string(oracle.size())};
  }
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    if (got[i] != oracle[i]) {
      return {"labels-mismatch",
              std::string(what) + "[" + std::to_string(i) + "] = " +
                  std::to_string(got[i]) + " vs oracle " +
                  std::to_string(oracle[i])};
    }
  }
  return {};
}

Outcome check(const Scenario& s, const fw::BenchmarkRun& oracle,
              const fw::BenchmarkRun& r) {
  if (!r.ok) return {"run-error", r.error};
  if (!r.stats.faults.termination_clean) {
    return {"termination-unclean",
            "Safra audit found in-flight messages at termination"};
  }
  switch (s.bench) {
    case fw::Benchmark::kBfs:
      return compare_exact(oracle.dist32, r.dist32, "dist");
    case fw::Benchmark::kCc:
      return compare_exact(oracle.labels, r.labels, "label");
    case fw::Benchmark::kSssp:
      return compare_exact(oracle.dist64, r.dist64, "dist");
    case fw::Benchmark::kKcore:
      return compare_exact(oracle.in_core, r.in_core, "in_core");
    case fw::Benchmark::kPagerank: {
      if (oracle.ranks.size() != r.ranks.size()) {
        return {"labels-mismatch",
                "rank size " + std::to_string(r.ranks.size()) +
                    " vs oracle " + std::to_string(oracle.ranks.size())};
      }
      const bool evicted = r.stats.faults.evicted_devices > 0;
      double mass = 0.0;
      double oracle_mass = 0.0;
      for (std::size_t i = 0; i < r.ranks.size(); ++i) {
        if (!std::isfinite(r.ranks[i])) {
          return {"non-finite-rank",
                  "rank[" + std::to_string(i) + "] = " +
                      std::to_string(r.ranks[i])};
        }
        mass += r.ranks[i];
        oracle_mass += oracle.ranks[i];
        if (evicted) {
          if (r.ranks[i] < kRankFloor) {
            return {"rank-below-base",
                    "rank[" + std::to_string(i) + "] = " +
                        std::to_string(r.ranks[i]) +
                        " below teleport base after eviction"};
          }
          continue;
        }
        const double diff =
            std::abs(static_cast<double>(r.ranks[i]) - oracle.ranks[i]);
        const double scale =
            std::max(1.0, std::abs(static_cast<double>(oracle.ranks[i])));
        if (diff > kRankTolerance * scale) {
          return {"tolerance-exceeded",
                  "rank[" + std::to_string(i) + "] = " +
                      std::to_string(r.ranks[i]) + " vs oracle " +
                      std::to_string(oracle.ranks[i]) + " (diff " +
                      std::to_string(diff) + " > " +
                      std::to_string(kRankTolerance * scale) + ")"};
        }
      }
      if (evicted &&
          std::abs(mass - oracle_mass) > kEvictedMassSlack * oracle_mass) {
        return {"rank-mass-drift",
                "total rank " + std::to_string(mass) + " vs oracle " +
                    std::to_string(oracle_mass) +
                    " after eviction (slack " +
                    std::to_string(kEvictedMassSlack) + ")"};
      }
      return {};
    }
  }
  return {};
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '/' || c == ' ') c = '-';
  }
  return s;
}

void write_reproducer(const std::filesystem::path& path, const Scenario& s,
                      bool wire_protocol, const fault::FaultPlan& plan,
                      const Outcome& o, const fault::ShrinkStats* shrink) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("sg_chaos_schema", 1);
  w.key("scenario").begin_object();
  w.kv("benchmark", fw::to_string(s.bench));
  w.kv("policy", partition::to_string(s.policy));
  w.kv("exec_model", engine::to_string(s.model));
  w.kv("devices", s.devices);
  w.kv("wire_protocol", wire_protocol);
  w.end_object();
  w.kv("failure", o.kind);
  w.kv("detail", o.detail);
  w.key("plan");
  fault::write_plan_json(w, plan);
  if (shrink != nullptr) {
    w.key("shrink").begin_object();
    w.kv("probes", shrink->probes);
    w.kv("removed_events", shrink->removed_events);
    w.kv("narrowed_windows", shrink->narrowed_windows);
    w.end_object();
  }
  w.end_object();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const std::string doc = w.take();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
}

std::vector<Scenario> scenario_matrix(bool smoke) {
  using partition::Policy;
  const std::vector<fw::Benchmark> benches = {
      fw::Benchmark::kBfs, fw::Benchmark::kCc, fw::Benchmark::kPagerank};
  const std::vector<Policy> policies =
      smoke ? std::vector<Policy>{Policy::OEC, Policy::CVC}
            : std::vector<Policy>{Policy::OEC, Policy::IEC, Policy::HVC,
                                  Policy::CVC};
  const std::vector<int> devices =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8};
  std::vector<Scenario> out;
  for (const auto b : benches) {
    for (const auto p : policies) {
      for (const auto m :
           {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
        for (const int d : devices) {
          out.push_back({b, p, m, d});
        }
      }
    }
  }
  if (smoke) {
    // One 8-device pair so the smoke matrix still varies device count.
    out.push_back({fw::Benchmark::kBfs, Policy::OEC,
                   engine::ExecModel::kSync, 8});
    out.push_back({fw::Benchmark::kBfs, Policy::OEC,
                   engine::ExecModel::kAsync, 8});
  }
  return out;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--smoke] [--chaos-seed N] [--seeds N] [--chaos-shrink]"
      " [--no-shrink]\n"
      "          [--inject-defect] [--keep-going] [--out-dir DIR]\n"
      "       %s --replay FILE\n",
      argv0, argv0);
  return 2;
}

int do_replay(const Options& opt) {
  std::ifstream in(opt.replay, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "sg_chaos: cannot open %s\n", opt.replay.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_chaos: %s: %s\n", opt.replay.c_str(), e.what());
    return 2;
  }
  const obs::JsonValue* schema = doc.find("sg_chaos_schema");
  if (schema == nullptr || static_cast<int>(schema->num_or(0)) != 1) {
    std::fprintf(stderr,
                 "sg_chaos: %s is not an sg_chaos reproducer (schema 1)\n",
                 opt.replay.c_str());
    return 2;
  }
  Scenario s;
  bool wire = true;
  fault::FaultPlan plan;
  std::string recorded_failure;
  try {
    const obs::JsonValue* sc = doc.find("scenario");
    if (sc == nullptr || !sc->is_object()) {
      throw std::runtime_error("missing scenario object");
    }
    s.bench = fw::benchmark_from_string(
        sc->find("benchmark")->str_or("bfs"));
    s.policy = partition::policy_from_string(
        sc->find("policy")->str_or("OEC"));
    const std::string model = sc->find("exec_model")->str_or("Sync");
    if (model != "Sync" && model != "Async") {
      throw std::runtime_error("unknown exec_model \"" + model + "\"");
    }
    s.model = model == "Sync" ? engine::ExecModel::kSync
                              : engine::ExecModel::kAsync;
    s.devices = static_cast<int>(sc->find("devices")->num_or(4));
    const obs::JsonValue* wp = sc->find("wire_protocol");
    wire = wp == nullptr || wp->kind != obs::JsonValue::Kind::kBool ||
           wp->boolean;
    const obs::JsonValue* pl = doc.find("plan");
    if (pl == nullptr) throw std::runtime_error("missing plan object");
    plan = fault::plan_from_json(*pl);
    const obs::JsonValue* fail = doc.find("failure");
    recorded_failure = fail != nullptr ? fail->str_or("") : "";
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    plan.validate_or_throw(s.devices, topo.num_hosts());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_chaos: %s: %s\n", opt.replay.c_str(), e.what());
    return 2;
  }
  std::printf("replaying %s: %s, wire_protocol=%s, plan events: %zu\n",
              opt.replay.c_str(), label_of(s).c_str(),
              wire ? "on" : "off", plan.events.size());
  const fw::BenchmarkRun oracle = run_scenario(s, nullptr, true);
  if (!oracle.ok) {
    std::fprintf(stderr, "sg_chaos: oracle run failed: %s\n",
                 oracle.error.c_str());
    return 2;
  }
  const fw::BenchmarkRun r = run_scenario(s, &plan, wire);
  if (r.ok) {
    const fault::FaultStats& f = r.stats.faults;
    std::printf(
        "faults: ckpt=%llu rollback=%llu evict=%llu rehomed=%llu "
        "deferred=%llu fenced=%llu drop=%llu corrupt=%llu dup=%llu "
        "reorder=%llu\n",
        static_cast<unsigned long long>(f.checkpoints_taken),
        static_cast<unsigned long long>(f.rollbacks),
        static_cast<unsigned long long>(f.evicted_devices),
        static_cast<unsigned long long>(f.rehomed_masters),
        static_cast<unsigned long long>(f.partition_deferred),
        static_cast<unsigned long long>(f.fence_rejects),
        static_cast<unsigned long long>(f.messages_dropped),
        static_cast<unsigned long long>(f.messages_corrupted),
        static_cast<unsigned long long>(f.duplicates_injected),
        static_cast<unsigned long long>(f.reorders_injected));
  }
  const Outcome o = check(s, oracle, r);
  if (o.failed()) {
    std::printf("reproduced: %s (%s)%s\n", o.kind.c_str(),
                o.detail.c_str(),
                o.kind == recorded_failure ? "" : " [failure kind differs"
                                                  " from recording]");
    return 1;
  }
  std::printf("did not reproduce: run matched the fault-free oracle\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sg_chaos: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--smoke") {
      opt.smoke = true;
    } else if (a == "--chaos-seed") {
      const char* v = need_value("--chaos-seed");
      if (v == nullptr) return 2;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--seeds") {
      const char* v = need_value("--seeds");
      if (v == nullptr) return 2;
      opt.seeds_per_scenario = std::atoi(v);
      if (opt.seeds_per_scenario <= 0) return usage(argv[0]);
    } else if (a == "--chaos-shrink") {
      opt.shrink = true;
    } else if (a == "--no-shrink") {
      opt.shrink = false;
    } else if (a == "--inject-defect") {
      opt.inject_defect = true;
    } else if (a == "--keep-going") {
      opt.keep_going = true;
    } else if (a == "--out-dir") {
      const char* v = need_value("--out-dir");
      if (v == nullptr) return 2;
      opt.out_dir = v;
    } else if (a == "--replay") {
      const char* v = need_value("--replay");
      if (v == nullptr) return 2;
      opt.replay = v;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "sg_chaos: unknown flag %s\n", a.c_str());
      return usage(argv[0]);
    }
  }
  if (!opt.replay.empty()) return do_replay(opt);
  const int seeds = opt.seeds_per_scenario > 0 ? opt.seeds_per_scenario
                    : opt.smoke                ? 1
                                               : 2;
  const bool wire = !opt.inject_defect;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);

  const std::vector<Scenario> scenarios = scenario_matrix(opt.smoke);
  std::printf("sg_chaos: %zu scenarios x %d plan(s), wire protocol %s, "
              "base seed %llu\n",
              scenarios.size(), seeds, wire ? "ON" : "OFF (--inject-defect)",
              static_cast<unsigned long long>(opt.seed));
  int failures = 0;
  int runs = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& s = scenarios[si];
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    fw::BenchmarkRun oracle;
    try {
      oracle = run_scenario(s, nullptr, true);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sg_chaos: %s oracle threw: %s\n",
                   label_of(s).c_str(), e.what());
      return 2;
    }
    if (!oracle.ok) {
      std::fprintf(stderr, "sg_chaos: %s oracle failed: %s\n",
                   label_of(s).c_str(), oracle.error.c_str());
      return 2;
    }
    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed =
          opt.seed + 1000003ULL * (si + 1) + 7919ULL * k;
      fault::ChaosSpec spec;
      spec.num_devices = s.devices;
      spec.num_hosts = topo.num_hosts();
      spec.horizon = oracle.stats.total_time;
      fault::FaultPlan plan;
      try {
        plan = fault::random_plan(seed, spec);
        plan.validate_or_throw(s.devices, topo.num_hosts());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_chaos: plan generation failed: %s\n",
                     e.what());
        return 2;
      }
      fw::BenchmarkRun r;
      try {
        r = run_scenario(s, &plan, wire);
      } catch (const std::exception& e) {
        r.ok = false;
        r.error = std::string("exception: ") + e.what();
      }
      ++runs;
      const Outcome o = check(s, oracle, r);
      if (!o.failed()) {
        const auto& f = r.stats.faults;
        std::printf(
            "[ok]   %-24s seed=%-12llu events=%zu  "
            "drop=%llu corrupt=%llu dup=%llu reorder=%llu deferred=%llu\n",
            label_of(s).c_str(), static_cast<unsigned long long>(seed),
            plan.events.size(),
            static_cast<unsigned long long>(f.messages_dropped),
            static_cast<unsigned long long>(f.messages_corrupted),
            static_cast<unsigned long long>(f.duplicates_injected),
            static_cast<unsigned long long>(f.reorders_injected),
            static_cast<unsigned long long>(f.partition_deferred));
        continue;
      }
      ++failures;
      std::printf("[FAIL] %-24s seed=%llu: %s (%s)\n", label_of(s).c_str(),
                  static_cast<unsigned long long>(seed), o.kind.c_str(),
                  o.detail.c_str());
      fault::FaultPlan minimal = plan;
      fault::ShrinkStats shrink_stats;
      if (opt.shrink) {
        const auto fails = [&](const fault::FaultPlan& cand) {
          if (!cand.validate(s.devices, topo.num_hosts()).empty()) {
            return false;
          }
          fw::BenchmarkRun rr;
          try {
            rr = run_scenario(s, &cand, wire);
          } catch (const std::exception&) {
            return false;
          }
          return check(s, oracle, rr).kind == o.kind;
        };
        minimal = fault::shrink_plan(plan, fails, &shrink_stats);
        std::printf(
            "       shrunk %zu -> %zu event(s) in %d probe(s)\n",
            plan.events.size(), minimal.events.size(), shrink_stats.probes);
      }
      const std::filesystem::path repro =
          std::filesystem::path(opt.out_dir) /
          ("chaos_repro_" + sanitize(label_of(s)) + "_seed" +
           std::to_string(seed) + ".json");
      write_reproducer(repro, s, wire, minimal, o,
                       opt.shrink ? &shrink_stats : nullptr);
      std::printf("       reproducer: %s (replay with --replay)\n",
                  repro.string().c_str());
      if (!opt.keep_going) {
        std::printf("sg_chaos: stopping at first failure "
                    "(--keep-going to continue)\n");
        std::printf("sg_chaos: %d run(s), %d failure(s)\n", runs, failures);
        return 1;
      }
    }
  }
  std::printf("sg_chaos: %d run(s), %d failure(s)\n", runs, failures);
  return failures > 0 ? 1 : 0;
}
