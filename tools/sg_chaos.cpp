// sg_chaos: chaos soak harness for the Byzantine-network tolerance
// stack. Generates seeded random fault plans (message drops, payload
// corruption, duplication, reordering, stragglers, network partitions)
// over a scenario matrix (benchmark x partition policy x BSP/BASP x
// device count), runs each against a fault-free oracle of the same
// scenario, and on any divergence greedily shrinks the plan to a
// minimal reproducer serialized as replayable JSON. Every reproducer
// gets a black-box companion `<stem>_flight.json` — the engine's flight
// recorder (round transitions, fault injections, wire anomalies, audit
// verdicts, evictions) dumped at failure time; read it with
// `sg_explain --flight`.
//
// With --gray the harness soaks the gray-failure stack instead:
// plans contain only degradation faults (device compute slowdown,
// link bandwidth/latency derating, memory pressure) and every
// scenario runs THREE times — (a) fault-free oracle, (b) observe-only
// (monitor watches, never acts), (c) mitigated (online shard
// migration). The oracle contract is then twofold: (c) must match (a)
// exactly (per-benchmark rules below), and when the degradation
// meaningfully inflated the observe-only makespan, mitigation must
// recover at least a per-kind margin of the inflation:
//   recovery = (b - c) / (b - a)  >=  margin
// (0.15 for device-degrade / memory-pressure, 0.0 for link-degrade,
// where migration has no slow device to move work off and must merely
// not regress). Failing gray plans shrink to reproducers like any
// other, tagged "gray": true so --replay re-runs the full triple.
//
// With --sdc the harness soaks the silent-data-corruption stack:
// plans contain only SDC faults (resident-state label bit flips aimed
// at replicated mirror copies picked from the partition's own exchange
// lists, defective-ALU kernel windows, checkpoint-blob corruption) and
// every scenario runs THREE times — (a) fault-free oracle, (b) an
// *unaudited twin* (same SDC plan, auditor off — shows whether the
// corruption actually changed the answer), (c) audited with
// AuditMode::kRepair. The oracle contract is zero undetected wrong
// answers: (c) must match (a) exactly (per-benchmark rules below), and
// whenever (b) diverged from (a) the audited run must have detected at
// least one violation — corruption may be value-neutral (a flip healed
// by the next broadcast), but it must never be value-changing AND
// unseen. Sync label-flip scenarios additionally assert the detection
// lag: worst per-device lag <= 2x the audit interval, in audited
// boundaries. Failing plans shrink to reproducers tagged "sdc": true
// so --replay re-runs the full triple.
//
// With --serve the harness soaks the serving layer's batched kernel
// instead: each scenario fuses 64 BFS sources into one msbfs run (the
// src/serve/ batch width) and asserts every lane bit-exact against 64
// independent single-source BfsProgram oracles — first fault-free,
// then under a seeded device-loss plan (msbfs is idempotent and
// re-homable, so loss recovery must be exact per lane). Failing plans
// shrink to reproducers tagged "serve": true.
//
// With --serve-overload the harness soaks the full serving scheduler
// under compound stress: a 4x-overload multi-tenant trace replayed
// through serve::BatchScheduler with the robustness layer armed
// (brownout + elastic resharding + fault-tolerant lifecycle) while a
// seeded plan injects device losses and gray degradations into the
// fused engine runs. Per scenario the oracle contract is:
//   1. zero silently-dropped queries — every submitted query is
//      exactly one of served or rejected-with-reason;
//   2. every non-degraded served answer bit-exact against sequential
//      reference oracles;
//   3. every degraded answer tagged degraded:true AND a sound finite
//      upper bound on the true distance;
//   4. the resilient run serves at least a floor fraction of admitted
//      queries (the check --inject-defect proves has teeth);
//   5. the top-priority deadline-hit ratio is no worse than a
//      brownout-off twin replaying the same trace under the same plan.
// Failing plans shrink to reproducers tagged "overload": true with
// flight black boxes, replayable like any other. --inject-defect
// arms a lifecycle defect (every engine attempt fails, zero retries)
// so the soak MUST fail check 4 — the harness's self-test.
//
// Usage:
//   sg_chaos [--smoke] [--gray] [--sdc] [--serve] [--serve-overload]
//            [--chaos-seed N]
//            [--seeds N] [--no-shrink] [--inject-defect] [--keep-going]
//            [--recovery-margin X] [--out-dir DIR]
//   sg_chaos --replay FILE
//
//   --smoke          reduced scenario matrix, one plan per scenario
//   --gray           gray-failure soak (degradation faults + SLO oracle)
//   --sdc            silent-data-corruption soak (bit flips + auditor)
//   --serve          serving-layer soak (batched msbfs vs unbatched
//                    oracles under device loss)
//   --serve-overload full-scheduler overload soak (brownout + reshard
//                    + lifecycle vs unbatched oracles under loss and
//                    gray degradation at 4x overload)
//   --recovery-margin X
//                    override the per-kind recovery margin (gray mode)
//   --chaos-seed N   base seed for plan generation (default 1)
//   --seeds N        plans per scenario (default 1 smoke, 2 full)
//   --chaos-shrink / --no-shrink
//                    shrink failing plans to minimal reproducers
//                    (default on)
//   --inject-defect  disable the defence under test: without --sdc,
//                    the wire protocol (EngineConfig::wire_protocol=
//                    false) so anomalies hit the reducers unprotected;
//                    with --sdc, the auditor (AuditMode::kOff) so the
//                    corrupted run ships its wrong answer. Either way
//                    the soak MUST fail and emit a shrunk reproducer —
//                    the harness's self-test
//   --keep-going     do not stop at the first failing scenario
//   --out-dir DIR    where reproducer JSON files are written (default .)
//   --replay FILE    re-run a reproducer written by a previous soak
//
// Exit codes: 0 = all scenarios matched their oracle (or a replay did
// not reproduce), 1 = at least one failure (reproducer written) or a
// replay reproduced its failure, 2 = usage or harness error.
//
// Oracle contract: bfs/cc/sssp/kcore results must be bit-identical to
// the fault-free run, including through partition-triggered evictions
// (idempotent programs recover exactly). Pagerank ranks are compared
// within a documented relative tolerance (anomaly-shifted arrival
// times permute float reductions); after an eviction the re-homed
// accumulator converges to a validly different fixed point, so evicted
// pagerank runs are held to invariants instead (finite, above the
// teleport base, total mass in the oracle's ballpark). BASP runs must
// additionally report clean Safra termination.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/msbfs.hpp"
#include "algo/reference.hpp"
#include "comm/sync_structure.hpp"
#include "engine/config.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "fw/benchmark.hpp"
#include "integrity/audit.hpp"
#include "fw/dirgl.hpp"
#include "graph/generators.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "partition/policy.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"
#include "util/hash.hpp"

namespace {

using namespace sg;

/// Relative tolerance for pagerank rank comparison (with a floor of
/// 1.0 on the scale, since ranks start at 1-alpha and are unnormalised
/// so hubs grow large): both runs converge to within pr_tolerance of
/// the fixed point, but fault-shifted arrival orders permute float
/// additions, so the two converged states may differ by a multiple of
/// the residual bound.
constexpr double kRankTolerance = 1e-3;

/// Once a device was evicted the elementwise comparison no longer
/// applies: a partition that outlasts detection rolls back to a
/// checkpoint and re-homes masters onto the survivors, and the
/// re-converged accumulator state is a validly different fixed point
/// (exact recovery is guaranteed — and soaked here — only for the
/// idempotent benchmarks). Evicted pagerank runs are instead held to
/// invariants: every rank finite and at least the teleport base
/// (1 - alpha), and total rank mass within this slack of the oracle's.
constexpr double kEvictedMassSlack = 0.25;

/// Per-vertex rank floor for evicted runs: the teleport term
/// (1 - pr_alpha) every vertex earns unconditionally, minus float fuzz.
constexpr double kRankFloor = 0.15 - 1e-3;

/// Per-device memory scale for the soak topologies. Generous (the
/// bench default) so that eviction-triggered re-homing always finds a
/// survivor with room for the orphaned masters, even when a plan
/// partitions away a whole host.
constexpr double kMemScale = 400.0;

struct Scenario {
  fw::Benchmark bench = fw::Benchmark::kBfs;
  partition::Policy policy = partition::Policy::OEC;
  engine::ExecModel model = engine::ExecModel::kSync;
  int devices = 4;
};

std::string label_of(const Scenario& s) {
  return std::string(fw::to_string(s.bench)) + "/" +
         partition::to_string(s.policy) + "/" +
         engine::to_string(s.model) + "/" + std::to_string(s.devices);
}

struct Options {
  bool smoke = false;
  bool gray = false;
  bool sdc = false;
  bool serve = false;
  bool serve_overload = false;
  std::uint64_t seed = 1;
  int seeds_per_scenario = -1;  // -1: 1 for smoke, 2 for full
  bool shrink = true;
  bool inject_defect = false;
  bool keep_going = false;
  double recovery_margin = -1.0;  // <0: per-kind default
  std::string out_dir = ".";
  std::string replay;
};

const graph::Csr& chaos_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 600;
    s.edges = 5000;
    s.zipf_out = 0.7;
    s.zipf_in = 0.8;
    s.hub_in_frac = 0.05;
    s.communities = 3;
    s.seed = 7;
    return graph::synthetic(s);
  }();
  return g;
}

const fw::Prepared& prepared_for(partition::Policy policy, int devices) {
  static std::map<std::string, fw::Prepared> cache;
  const std::string key =
      std::string(partition::to_string(policy)) + "/" +
      std::to_string(devices);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, fw::prepare(chaos_graph(), policy, devices))
             .first;
  }
  return it->second;
}

/// Gray-run knobs: the soak tunes the monitor to the scenario scale
/// the way an operator would — the default 100us heartbeat cadence is
/// sized for production-length runs and would never tick inside these
/// micro-benchmarks, so the cadence is derived from the fault-free
/// oracle's makespan (~50 beats per run) and the sustain requirement
/// is shortened to match the handful of rounds these runs have.
struct GrayTuning {
  fault::MitigationMode mode = fault::MitigationMode::kObserve;
  sim::SimTime heartbeat;  ///< derived from the oracle makespan
};

fw::BenchmarkRun run_scenario(const Scenario& s,
                              const fault::FaultPlan* plan,
                              bool wire_protocol,
                              const GrayTuning* gray = nullptr,
                              const integrity::AuditPolicy* audit = nullptr) {
  const fw::Prepared& prep = prepared_for(s.policy, s.devices);
  const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  engine::EngineConfig cfg = engine::make_variant(
      s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                          : engine::Variant::kVar4);
  cfg.wire_protocol = wire_protocol;
  cfg.fault_plan = plan;
  if (gray != nullptr) {
    cfg.mitigation.mode = gray->mode;
    // Micro-benchmarks finish in a handful of rounds, so a window only
    // spans a few evaluations. Two consecutive crossings is the sweet
    // spot: a transient blip's EWMA decays below the threshold before
    // the second evaluation (so we never pay migration churn for a
    // fault that is already over), while a genuine sustained degrade
    // stretches its own rounds enough to be seen twice.
    cfg.mitigation.sustain_rounds = 2;
    // With ~50 beats per run a degrade window may contain only one or
    // two stretched beats, and a stretched round can swallow the whole
    // window between two barriers — the estimate must converge (and
    // decay) within a beat or two for the barrier inside the window to
    // see an actionable score.
    cfg.mitigation.stretch_alpha = 0.4;
    cfg.health.heartbeat_interval = gray->heartbeat;
  }
  if (audit != nullptr) {
    cfg.audit = *audit;
  }
  // Accumulator programs need checkpoints for exact recovery should a
  // partition outlast detection and evict its minority side.
  if (s.bench == fw::Benchmark::kPagerank) {
    cfg.checkpoint.interval_rounds = 1;
  }
  return fw::DIrGL::run(s.bench, prep, topo, params, cfg);
}

struct Outcome {
  std::string kind;  ///< empty = scenario matched its oracle
  std::string detail;
  [[nodiscard]] bool failed() const { return !kind.empty(); }
};

template <typename T>
Outcome compare_exact(const std::vector<T>& oracle,
                      const std::vector<T>& got, const char* what) {
  if (oracle.size() != got.size()) {
    return {"labels-mismatch",
            std::string(what) + " size " + std::to_string(got.size()) +
                " vs oracle " + std::to_string(oracle.size())};
  }
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    if (got[i] != oracle[i]) {
      return {"labels-mismatch",
              std::string(what) + "[" + std::to_string(i) + "] = " +
                  std::to_string(got[i]) + " vs oracle " +
                  std::to_string(oracle[i])};
    }
  }
  return {};
}

Outcome check(const Scenario& s, const fw::BenchmarkRun& oracle,
              const fw::BenchmarkRun& r) {
  if (!r.ok) return {"run-error", r.error};
  if (!r.stats.faults.termination_clean) {
    return {"termination-unclean",
            "Safra audit found in-flight messages at termination"};
  }
  switch (s.bench) {
    case fw::Benchmark::kBfs:
      return compare_exact(oracle.dist32, r.dist32, "dist");
    case fw::Benchmark::kCc:
      return compare_exact(oracle.labels, r.labels, "label");
    case fw::Benchmark::kSssp:
      return compare_exact(oracle.dist64, r.dist64, "dist");
    case fw::Benchmark::kKcore:
      return compare_exact(oracle.in_core, r.in_core, "in_core");
    case fw::Benchmark::kPagerank: {
      if (oracle.ranks.size() != r.ranks.size()) {
        return {"labels-mismatch",
                "rank size " + std::to_string(r.ranks.size()) +
                    " vs oracle " + std::to_string(oracle.ranks.size())};
      }
      // Online shard migration re-homes the accumulator exactly (state
      // moves bit-for-bit) but changes the reduction grouping from then
      // on, so like an eviction it converges to a validly different
      // fixed point — the invariant contract applies to both.
      const bool evicted = r.stats.faults.evicted_devices > 0 ||
                           r.stats.faults.gray_migrations > 0 ||
                           r.stats.faults.gray_evictions > 0;
      double mass = 0.0;
      double oracle_mass = 0.0;
      for (std::size_t i = 0; i < r.ranks.size(); ++i) {
        if (!std::isfinite(r.ranks[i])) {
          return {"non-finite-rank",
                  "rank[" + std::to_string(i) + "] = " +
                      std::to_string(r.ranks[i])};
        }
        mass += r.ranks[i];
        oracle_mass += oracle.ranks[i];
        if (evicted) {
          if (r.ranks[i] < kRankFloor) {
            return {"rank-below-base",
                    "rank[" + std::to_string(i) + "] = " +
                        std::to_string(r.ranks[i]) +
                        " below teleport base after eviction"};
          }
          continue;
        }
        const double diff =
            std::abs(static_cast<double>(r.ranks[i]) - oracle.ranks[i]);
        const double scale =
            std::max(1.0, std::abs(static_cast<double>(oracle.ranks[i])));
        if (diff > kRankTolerance * scale) {
          return {"tolerance-exceeded",
                  "rank[" + std::to_string(i) + "] = " +
                      std::to_string(r.ranks[i]) + " vs oracle " +
                      std::to_string(oracle.ranks[i]) + " (diff " +
                      std::to_string(diff) + " > " +
                      std::to_string(kRankTolerance * scale) + ")"};
        }
      }
      if (evicted &&
          std::abs(mass - oracle_mass) > kEvictedMassSlack * oracle_mass) {
        return {"rank-mass-drift",
                "total rank " + std::to_string(mass) + " vs oracle " +
                    std::to_string(oracle_mass) +
                    " after eviction (slack " +
                    std::to_string(kEvictedMassSlack) + ")"};
      }
      return {};
    }
  }
  return {};
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '/' || c == ' ') c = '-';
  }
  return s;
}

struct GrayRepro {
  double margin = 0.0;  ///< recovery margin the failing triple was held to
};

struct SdcRepro {
  integrity::AuditMode mode = integrity::AuditMode::kRepair;
  int interval = 1;  ///< audit interval the failing triple ran with
};

/// What a failing --serve-overload case needs to replay exactly: the
/// workload trace is regenerated from (workload_seed, factor), and
/// `defect` re-arms the lifecycle self-test defect.
struct OverloadRepro {
  std::uint64_t workload_seed = 42;
  double factor = 4.0;
  bool defect = false;
};

void write_reproducer(const std::filesystem::path& path, const Scenario& s,
                      bool wire_protocol, const fault::FaultPlan& plan,
                      const Outcome& o, const fault::ShrinkStats* shrink,
                      const GrayRepro* gray = nullptr,
                      const SdcRepro* sdc = nullptr, bool serve = false,
                      const OverloadRepro* overload = nullptr) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("sg_chaos_schema", 1);
  w.key("scenario").begin_object();
  w.kv("benchmark", fw::to_string(s.bench));
  w.kv("policy", partition::to_string(s.policy));
  w.kv("exec_model", engine::to_string(s.model));
  w.kv("devices", s.devices);
  w.kv("wire_protocol", wire_protocol);
  w.end_object();
  if (gray != nullptr) {
    w.kv("gray", true);
    w.kv("recovery_margin", gray->margin);
  }
  if (sdc != nullptr) {
    w.kv("sdc", true);
    w.kv("audit_mode", integrity::to_string(sdc->mode));
    w.kv("audit_interval", sdc->interval);
  }
  if (serve) {
    w.kv("serve", true);
  }
  if (overload != nullptr) {
    w.kv("overload", true);
    w.kv("workload_seed", overload->workload_seed);
    w.kv("overload_factor", overload->factor);
    w.kv("defect", overload->defect);
  }
  w.kv("failure", o.kind);
  w.kv("detail", o.detail);
  w.key("plan");
  fault::write_plan_json(w, plan);
  if (shrink != nullptr) {
    w.key("shrink").begin_object();
    w.kv("probes", shrink->probes);
    w.kv("removed_events", shrink->removed_events);
    w.kv("narrowed_windows", shrink->narrowed_windows);
    w.end_object();
  }
  w.end_object();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const std::string doc = w.take();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
}

/// Black-box companion of a reproducer: dumps the process-wide flight
/// recorder (which the failing runs just fed) next to `repro_path` as
/// `<stem>_flight.json`, then clears the ring so the next scenario's
/// dump holds only its own events. Returns the dump path (empty string
/// on I/O failure).
std::string dump_flight(const std::filesystem::path& repro_path) {
  std::filesystem::path dump = repro_path;
  dump.replace_extension();
  dump += "_flight.json";
  obs::FlightRecorder& rec = obs::FlightRecorder::global();
  const bool ok = rec.dump(dump, "chaos_failure", /*include_wall=*/true);
  rec.clear();
  if (!ok) {
    std::fprintf(stderr, "sg_chaos: FAILED to write flight dump %s\n",
                 dump.string().c_str());
    return {};
  }
  return dump.string();
}

std::vector<Scenario> scenario_matrix(bool smoke) {
  using partition::Policy;
  const std::vector<fw::Benchmark> benches = {
      fw::Benchmark::kBfs, fw::Benchmark::kCc, fw::Benchmark::kPagerank};
  const std::vector<Policy> policies =
      smoke ? std::vector<Policy>{Policy::OEC, Policy::CVC}
            : std::vector<Policy>{Policy::OEC, Policy::IEC, Policy::HVC,
                                  Policy::CVC};
  const std::vector<int> devices =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8};
  std::vector<Scenario> out;
  for (const auto b : benches) {
    for (const auto p : policies) {
      for (const auto m :
           {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
        for (const int d : devices) {
          out.push_back({b, p, m, d});
        }
      }
    }
  }
  if (smoke) {
    // One 8-device pair so the smoke matrix still varies device count.
    out.push_back({fw::Benchmark::kBfs, Policy::OEC,
                   engine::ExecModel::kSync, 8});
    out.push_back({fw::Benchmark::kBfs, Policy::OEC,
                   engine::ExecModel::kAsync, 8});
  }
  return out;
}

/// Gray soak matrix: every policy meets every exec model (migration
/// planning depends on the replication structure, so all four policies
/// must prove out), at the 4-device/2-host shape where one degraded
/// device is a quarter of the fleet — big enough to hurt, small enough
/// that survivors always have headroom to adopt its masters.
std::vector<Scenario> gray_matrix(bool smoke) {
  using partition::Policy;
  const std::vector<fw::Benchmark> benches = {
      fw::Benchmark::kBfs, fw::Benchmark::kCc, fw::Benchmark::kPagerank};
  const std::vector<Policy> policies =
      smoke ? std::vector<Policy>{Policy::OEC, Policy::CVC}
            : std::vector<Policy>{Policy::OEC, Policy::IEC, Policy::HVC,
                                  Policy::CVC};
  std::vector<Scenario> out;
  for (const auto b : benches) {
    for (const auto p : policies) {
      for (const auto m :
           {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
        out.push_back({b, p, m, 4});
      }
    }
  }
  return out;
}

fault::ChaosSpec gray_spec(const Scenario& s, int num_hosts,
                           sim::SimTime horizon) {
  fault::ChaosSpec spec;
  spec.num_devices = s.devices;
  spec.num_hosts = num_hosts;
  spec.horizon = horizon;
  // Degradation faults only: the SLO oracle compares makespans, and
  // message anomalies would fold retry noise into the inflation the
  // recovery ratio is judged against.
  spec.allow_drop = false;
  spec.allow_corrupt = false;
  spec.allow_duplicate = false;
  spec.allow_reorder = false;
  spec.allow_partition = false;
  spec.allow_straggler = false;
  spec.allow_degrade = true;
  spec.allow_link_degrade = num_hosts >= 2;
  spec.allow_pressure = true;
  spec.min_events = 1;
  spec.max_events = 2;
  return spec;
}

/// Degrade windows shorter than this fraction of the fault-free
/// makespan are transients: the monitor is *designed* to ride them out
/// (the hysteresis would otherwise pay migration churn for a fault
/// that ends before the shards land), so no recovery is demanded.
constexpr double kTransientFraction = 0.25;

/// Per-scenario recovery margin, min'd across the plan's events; a
/// margin of zero means the cell is judged for determinism and label
/// exactness but not for makespan recovery. Zero for: vertex-cut
/// policies (HVC/CVC — most of a device's local edges there belong to
/// remotely-mastered vertices, so master migration cannot shed its
/// compute and the engine's shed guard stands down), link-degrade
/// events (no slow device to migrate off a host-link derate), and
/// transient windows (< kTransientFraction of the fault-free run —
/// deliberately ridden out, see above). Sustained device-degrade /
/// memory-pressure plans on edge-cut layouts must recover a real
/// fraction of the inflation.
double margin_for(const fault::FaultPlan& plan, partition::Policy policy,
                  double oracle_seconds) {
  if (policy == partition::Policy::HVC ||
      policy == partition::Policy::CVC) {
    return 0.0;
  }
  double margin = 1.0;
  bool any = false;
  for (const fault::FaultEvent& e : plan.events) {
    double m = 0.0;
    switch (e.kind) {
      case fault::FaultKind::kDeviceDegrade:
      case fault::FaultKind::kMemoryPressure:
        m = oracle_seconds > 0.0 && e.duration.seconds() <
                                        kTransientFraction * oracle_seconds
                ? 0.0
                : 0.15;
        break;
      case fault::FaultKind::kLinkDegrade:
        m = 0.0;
        break;
      default:
        continue;
    }
    any = true;
    margin = std::min(margin, m);
  }
  return any ? margin : 0.0;
}

/// Inflations below this fraction of the oracle makespan are too mild
/// to judge a recovery ratio against: a comm-bound run barely notices
/// a compute derate, the monitor may legitimately never cross its
/// alert threshold, and shaving a sliver off a sliver is noise.
constexpr double kSloJudgeFraction = 0.15;

/// Heartbeats (and BASP gray polls) per fault-free run: the cadence
/// the soak hands the monitor, derived from the oracle makespan.
constexpr double kGrayBeatsPerRun = 50.0;

Outcome gray_check(const Scenario& s, const fw::BenchmarkRun& oracle,
                   const fw::BenchmarkRun& observe,
                   const fw::BenchmarkRun& mitigated, double margin) {
  Outcome o = check(s, oracle, observe);
  if (o.failed()) {
    o.kind = "observe-" + o.kind;
    return o;
  }
  o = check(s, oracle, mitigated);
  if (o.failed()) {
    o.kind = "mitigated-" + o.kind;
    return o;
  }
  const double ta = oracle.stats.total_time.seconds();
  const double tb = observe.stats.total_time.seconds();
  const double tc = mitigated.stats.total_time.seconds();
  // A non-positive margin means this cell has no recovery SLO — e.g.
  // vertex-cut layouts, where master migration cannot reliably shed
  // compute and the fixed cost (harvest + rebuild + forced sync
  // rounds) can exceed the remaining benefit on short runs. The cell
  // is still fully judged for determinism, label bit-exactness, and
  // invariants above; only the makespan ratio is exempt.
  if (margin <= 0.0) return {};
  const double inflation = tb - ta;
  if (inflation <= kSloJudgeFraction * ta) return {};
  const double recovery = (tb - tc) / inflation;
  if (recovery + 1e-9 < margin) {
    std::ostringstream d;
    d << "recovered " << recovery << " of " << inflation
      << "s makespan inflation (oracle " << ta << "s, observe-only " << tb
      << "s, mitigated " << tc << "s; margin " << margin << ")";
    return {"slo-recovery", d.str()};
  }
  return {};
}

int do_gray(const Options& opt) {
  const int seeds = opt.seeds_per_scenario > 0 ? opt.seeds_per_scenario
                    : opt.smoke                ? 1
                                               : 2;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::vector<Scenario> scenarios = gray_matrix(opt.smoke);
  std::printf("sg_chaos --gray: %zu scenarios x %d plan(s), base seed "
              "%llu\n",
              scenarios.size(), seeds,
              static_cast<unsigned long long>(opt.seed));
  int failures = 0;
  int runs = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& s = scenarios[si];
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    fw::BenchmarkRun oracle;
    try {
      oracle = run_scenario(s, nullptr, true);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sg_chaos: %s oracle threw: %s\n",
                   label_of(s).c_str(), e.what());
      return 2;
    }
    if (!oracle.ok) {
      std::fprintf(stderr, "sg_chaos: %s oracle failed: %s\n",
                   label_of(s).c_str(), oracle.error.c_str());
      return 2;
    }
    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed =
          opt.seed + 1000003ULL * (si + 1) + 7919ULL * k;
      fault::FaultPlan plan;
      try {
        plan = fault::random_plan(
            seed, gray_spec(s, topo.num_hosts(), oracle.stats.total_time));
        plan.validate_or_throw(s.devices, topo.num_hosts());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_chaos: plan generation failed: %s\n",
                     e.what());
        return 2;
      }
      const double margin =
          opt.recovery_margin >= 0.0 ? opt.recovery_margin
                                     : margin_for(plan, s.policy, oracle.stats.total_time.seconds());
      const sim::SimTime beat = oracle.stats.total_time * (1.0 / kGrayBeatsPerRun);
      auto run_with = [&](const fault::FaultPlan& p,
                          fault::MitigationMode mit) {
        GrayTuning tune{mit, beat};
        fw::BenchmarkRun r;
        try {
          r = run_scenario(s, &p, true, &tune);
        } catch (const std::exception& e) {
          r.ok = false;
          r.error = std::string("exception: ") + e.what();
        }
        return r;
      };
      const fw::BenchmarkRun b =
          run_with(plan, fault::MitigationMode::kObserve);
      const fw::BenchmarkRun c =
          run_with(plan, fault::MitigationMode::kMigrate);
      ++runs;
      const Outcome o = gray_check(s, oracle, b, c, margin);
      if (!o.failed()) {
        const auto& f = c.stats.faults;
        const double ta = oracle.stats.total_time.seconds();
        const double tb = b.stats.total_time.seconds();
        const double tc = c.stats.total_time.seconds();
        const double infl = tb - ta;
        std::printf(
            "[ok]   %-24s seed=%-12llu events=%zu migr=%llu evict=%llu "
            "alerts=%llu infl=%.1f%% recov=%.0f%%\n",
            label_of(s).c_str(), static_cast<unsigned long long>(seed),
            plan.events.size(),
            static_cast<unsigned long long>(f.gray_migrations),
            static_cast<unsigned long long>(f.gray_evictions),
            static_cast<unsigned long long>(f.gray_alerts),
            ta > 0.0 ? 100.0 * infl / ta : 0.0,
            infl > 0.0 ? 100.0 * (tb - tc) / infl : 0.0);
        continue;
      }
      ++failures;
      std::printf("[FAIL] %-24s seed=%llu: %s (%s)\n", label_of(s).c_str(),
                  static_cast<unsigned long long>(seed), o.kind.c_str(),
                  o.detail.c_str());
      fault::FaultPlan minimal = plan;
      fault::ShrinkStats shrink_stats;
      if (opt.shrink) {
        const auto fails = [&](const fault::FaultPlan& cand) {
          if (!cand.validate(s.devices, topo.num_hosts()).empty()) {
            return false;
          }
          const fw::BenchmarkRun rb =
              run_with(cand, fault::MitigationMode::kObserve);
          const fw::BenchmarkRun rc =
              run_with(cand, fault::MitigationMode::kMigrate);
          return gray_check(s, oracle, rb, rc, margin).kind == o.kind;
        };
        minimal = fault::shrink_plan(plan, fails, &shrink_stats);
        std::printf(
            "       shrunk %zu -> %zu event(s) in %d probe(s)\n",
            plan.events.size(), minimal.events.size(), shrink_stats.probes);
      }
      GrayRepro gr;
      gr.margin = margin;
      const std::filesystem::path repro =
          std::filesystem::path(opt.out_dir) /
          ("chaos_repro_gray_" + sanitize(label_of(s)) + "_seed" +
           std::to_string(seed) + ".json");
      write_reproducer(repro, s, true, minimal, o,
                       opt.shrink ? &shrink_stats : nullptr, &gr);
      std::printf("       reproducer: %s (replay with --replay)\n",
                  repro.string().c_str());
      const std::string fdump = dump_flight(repro);
      if (!fdump.empty()) {
        std::printf("       flight dump: %s\n", fdump.c_str());
      }
      if (!opt.keep_going) {
        std::printf("sg_chaos: stopping at first failure "
                    "(--keep-going to continue)\n");
        std::printf("sg_chaos: %d triple(s), %d failure(s)\n", runs,
                    failures);
        return 1;
      }
    }
  }
  std::printf("sg_chaos: %d triple(s), %d failure(s)\n", runs, failures);
  return failures > 0 ? 1 : 0;
}

// ---- silent-data-corruption soak (--sdc) ---------------------------------

/// SDC soak matrix: same shape as the gray matrix — every partition
/// policy meets every exec model (digest coverage is the broadcast
/// exchange lists, whose shape is the replication structure, so all
/// four policies must prove out) at the 4-device/2-host scale.
std::vector<Scenario> sdc_matrix(bool smoke) { return gray_matrix(smoke); }

/// A replicated vertex the plan can flip: `vertex`'s mirror copy is
/// resident on `device`, and it sits on a broadcast exchange list the
/// auditor digests — so a master-canonical mirror copy can repair the
/// flip bit-exactly and the digest check bounds its detection latency.
struct FlipTarget {
  int device = -1;
  std::int64_t vertex = -1;
};

/// The broadcast proxy filter the engine audits for each benchmark —
/// must match the program's SyncPattern (bfs/sssp push, pagerank pull,
/// cc reads both endpoints).
comm::ProxyFilter bcast_filter_of(fw::Benchmark b) {
  switch (b) {
    case fw::Benchmark::kBfs:
    case fw::Benchmark::kSssp:
      return comm::SyncPattern::push().broadcast_filter();
    case fw::Benchmark::kPagerank:
      return comm::SyncPattern::pull().broadcast_filter();
    default:
      return comm::ProxyFilter::kAll;
  }
}

/// Enumerates every digest-audited mirror entry of the partition, in a
/// deterministic (device, partner, list) order. When the benchmark's
/// broadcast surface is structurally empty (bfs under OEC: push +
/// outgoing-edge-cut elides the broadcast, so there is nothing to
/// digest), falls back to the full replication surface (kAll) — flips
/// there corrupt the masters through the min-reduce instead and are
/// caught by the final-audit certificate rather than a per-boundary
/// digest, which is exactly the coverage story DESIGN.md §13 claims.
std::vector<FlipTarget> sdc_targets(fw::Benchmark b,
                                    const fw::Prepared& prep, int devices) {
  auto collect = [&](comm::ProxyFilter filter) {
    std::vector<FlipTarget> out;
    for (int m = 0; m < devices; ++m) {
      const partition::LocalGraph& lg = prep.dist.part(m);
      for (int o = 0; o < devices; ++o) {
        if (o == m) continue;
        const comm::ExchangeList& list = prep.sync.list(m, o, filter);
        for (const graph::VertexId ml : list.mirror_local) {
          out.push_back({m, static_cast<std::int64_t>(lg.l2g[ml])});
        }
      }
    }
    return out;
  };
  std::vector<FlipTarget> out = collect(bcast_filter_of(b));
  if (out.empty()) out = collect(comm::ProxyFilter::kAll);
  return out;
}

/// splitmix64 — the harness's own little generator for picking flip
/// targets/bits/times from the plan seed (fault::random_plan's rng is
/// internal to chaos.cpp, and SDC plans are built from the partition
/// layout rather than blind).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Builds the scenario's SDC plan: two label bit flips aimed at
/// distinct digest-audited mirror entries (times scattered across the
/// middle of the fault-free run so flips land at live barriers), plus
/// a kernel-SDC window for bfs/pagerank (CC's wrong-low kernel flips
/// reduce into the master min-wise and go digest-blind until the final
/// certificate — covered, but slow to shrink) and a checkpoint-blob
/// flip for pagerank (the only soaked benchmark that checkpoints).
fault::FaultPlan sdc_plan(std::uint64_t seed, const Scenario& s,
                          const std::vector<FlipTarget>& targets,
                          sim::SimTime horizon) {
  fault::FaultPlan plan;
  plan.seed = seed;
  const double h = std::max(horizon.seconds(), 1e-9);
  std::uint64_t r = seed;
  std::size_t prev = targets.size();
  for (int i = 0; i < 2; ++i) {
    r = mix64(r);
    std::size_t pick = r % targets.size();
    if (pick == prev) pick = (pick + 1) % targets.size();
    prev = pick;
    const FlipTarget& t = targets[pick];
    r = mix64(r);
    // Low 30 bits: meaningful for every label type in the system (the
    // narrowest is 32 bits) without hitting a float's sign bit.
    const int bit = static_cast<int>(r % 30);
    r = mix64(r);
    const double frac =
        0.15 + 0.55 * static_cast<double>(r % 1000) / 1000.0;
    plan.flip_label(t.device, t.vertex, bit, sim::SimTime{h * frac});
  }
  if (s.bench != fw::Benchmark::kCc) {
    r = mix64(r);
    plan.sdc_kernel(static_cast<int>(r % static_cast<std::uint64_t>(
                        s.devices)),
                    sim::SimTime{h * 0.2}, sim::SimTime{h * 0.4}, 0.3);
  }
  if (s.bench == fw::Benchmark::kPagerank) {
    r = mix64(r);
    plan.corrupt_checkpoint(static_cast<int>(r % static_cast<std::uint64_t>(
                                s.devices)),
                            sim::SimTime{h * 0.3});
  }
  return plan;
}

/// The audited leg's policy. Pagerank audits every boundary (its pull
/// broadcast heals mirrors aggressively, so a wider interval would let
/// flips be overwritten before any audit sees them — legal but low
/// coverage); the integer benchmarks take interval 2 so the soak also
/// exercises nonzero detection lag. Escalation is pushed out of reach:
/// the soak judges answer exactness, and a mid-run eviction would move
/// pagerank to a different (valid) fixed point.
integrity::AuditPolicy sdc_policy(const Scenario& s, bool defect) {
  integrity::AuditPolicy p;
  p.mode = defect ? integrity::AuditMode::kOff
                  : integrity::AuditMode::kRepair;
  p.interval_rounds = s.bench == fw::Benchmark::kPagerank ? 1 : 2;
  p.escalate_after = 1000;
  return p;
}

/// The SDC oracle contract, per triple:
///  1. the audited run must match the fault-free oracle (per-benchmark
///     rules of check());
///  2. the plan must actually have landed (injections > 0);
///  3. zero undetected wrong answers — if the unaudited twin diverged
///     from the oracle, the audited run must have detected something
///     (value-neutral corruption may legitimately go unflagged);
///  4. Sync runs with auditing on: worst per-device detection lag
///     <= 2x the audit interval, in audited boundaries.
Outcome sdc_check(const Scenario& s, const fw::BenchmarkRun& oracle,
                  const fw::BenchmarkRun& unaudited,
                  const fw::BenchmarkRun& audited,
                  const integrity::AuditPolicy& pol) {
  Outcome a = check(s, oracle, audited);
  if (a.failed()) {
    a.kind = "audited-" + a.kind;
    return a;
  }
  const fault::FaultStats& f = audited.stats.faults;
  if (f.sdc_injected == 0) {
    return {"no-injection",
            "plan scheduled SDC events but none were applied"};
  }
  const Outcome u = unaudited.ok
                        ? check(s, oracle, unaudited)
                        : Outcome{"run-error", unaudited.error};
  if (u.failed() && f.sdc_detected == 0) {
    return {"undetected-corruption",
            "unaudited twin diverged (" + u.kind + ": " + u.detail +
                ") but the audited run detected nothing"};
  }
  if (s.model == engine::ExecModel::kSync && pol.enabled()) {
    const std::uint64_t bound =
        2ULL * static_cast<std::uint64_t>(
                   pol.interval_rounds < 1 ? 1 : pol.interval_rounds);
    for (const fault::SdcStats& d : f.sdc) {
      if (d.max_detect_lag_rounds > bound) {
        return {"detect-lag",
                "device " + std::to_string(d.device) + " detection lag " +
                    std::to_string(d.max_detect_lag_rounds) +
                    " audited boundaries exceeds 2x interval (" +
                    std::to_string(bound) + ")"};
      }
    }
  }
  return {};
}

int do_sdc(const Options& opt) {
  const int seeds = opt.seeds_per_scenario > 0 ? opt.seeds_per_scenario
                    : opt.smoke                ? 1
                                               : 2;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::vector<Scenario> scenarios = sdc_matrix(opt.smoke);
  std::printf("sg_chaos --sdc: %zu scenarios x %d plan(s), auditor %s, "
              "base seed %llu\n",
              scenarios.size(), seeds,
              opt.inject_defect ? "OFF (--inject-defect)" : "ON (repair)",
              static_cast<unsigned long long>(opt.seed));
  int failures = 0;
  int runs = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& s = scenarios[si];
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    fw::BenchmarkRun oracle;
    try {
      oracle = run_scenario(s, nullptr, true);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sg_chaos: %s oracle threw: %s\n",
                   label_of(s).c_str(), e.what());
      return 2;
    }
    if (!oracle.ok) {
      std::fprintf(stderr, "sg_chaos: %s oracle failed: %s\n",
                   label_of(s).c_str(), oracle.error.c_str());
      return 2;
    }
    const std::vector<FlipTarget> targets =
        sdc_targets(s.bench, prepared_for(s.policy, s.devices), s.devices);
    if (targets.empty()) {
      std::fprintf(stderr,
                   "sg_chaos: %s has no digest-audited mirrors to flip\n",
                   label_of(s).c_str());
      return 2;
    }
    const integrity::AuditPolicy pol = sdc_policy(s, opt.inject_defect);
    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed =
          opt.seed + 1000003ULL * (si + 1) + 7919ULL * k;
      fault::FaultPlan plan;
      try {
        plan = sdc_plan(seed, s, targets, oracle.stats.total_time);
        plan.validate_or_throw(s.devices, topo.num_hosts());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_chaos: plan generation failed: %s\n",
                     e.what());
        return 2;
      }
      auto run_with = [&](const fault::FaultPlan& p,
                          const integrity::AuditPolicy* ap) {
        fw::BenchmarkRun r;
        try {
          r = run_scenario(s, &p, true, nullptr, ap);
        } catch (const std::exception& e) {
          r.ok = false;
          r.error = std::string("exception: ") + e.what();
        }
        return r;
      };
      const fw::BenchmarkRun twin = run_with(plan, nullptr);
      const fw::BenchmarkRun audited = run_with(plan, &pol);
      ++runs;
      const Outcome o = sdc_check(s, oracle, twin, audited, pol);
      if (!o.failed()) {
        const fault::FaultStats& f = audited.stats.faults;
        std::uint64_t lag = 0;
        for (const fault::SdcStats& d : f.sdc) {
          lag = std::max(lag, d.max_detect_lag_rounds);
        }
        std::printf(
            "[ok]   %-24s seed=%-12llu events=%zu inj=%llu det=%llu "
            "rep=%llu audits=%llu lag=%llu\n",
            label_of(s).c_str(), static_cast<unsigned long long>(seed),
            plan.events.size(),
            static_cast<unsigned long long>(f.sdc_injected),
            static_cast<unsigned long long>(f.sdc_detected),
            static_cast<unsigned long long>(f.sdc_repaired),
            static_cast<unsigned long long>(f.sdc_audits),
            static_cast<unsigned long long>(lag));
        continue;
      }
      ++failures;
      std::printf("[FAIL] %-24s seed=%llu: %s (%s)\n", label_of(s).c_str(),
                  static_cast<unsigned long long>(seed), o.kind.c_str(),
                  o.detail.c_str());
      fault::FaultPlan minimal = plan;
      fault::ShrinkStats shrink_stats;
      if (opt.shrink) {
        const auto fails = [&](const fault::FaultPlan& cand) {
          if (!cand.validate(s.devices, topo.num_hosts()).empty()) {
            return false;
          }
          const fw::BenchmarkRun ru = run_with(cand, nullptr);
          const fw::BenchmarkRun ra = run_with(cand, &pol);
          return sdc_check(s, oracle, ru, ra, pol).kind == o.kind;
        };
        minimal = fault::shrink_plan(plan, fails, &shrink_stats);
        std::printf(
            "       shrunk %zu -> %zu event(s) in %d probe(s)\n",
            plan.events.size(), minimal.events.size(), shrink_stats.probes);
      }
      SdcRepro sr;
      sr.mode = pol.mode;
      sr.interval = pol.interval_rounds;
      const std::filesystem::path repro =
          std::filesystem::path(opt.out_dir) /
          ("chaos_repro_sdc_" + sanitize(label_of(s)) + "_seed" +
           std::to_string(seed) + ".json");
      write_reproducer(repro, s, true, minimal, o,
                       opt.shrink ? &shrink_stats : nullptr, nullptr, &sr);
      std::printf("       reproducer: %s (replay with --replay)\n",
                  repro.string().c_str());
      const std::string fdump = dump_flight(repro);
      if (!fdump.empty()) {
        std::printf("       flight dump: %s\n", fdump.c_str());
      }
      if (!opt.keep_going) {
        std::printf("sg_chaos: stopping at first failure "
                    "(--keep-going to continue)\n");
        std::printf("sg_chaos: %d triple(s), %d failure(s)\n", runs,
                    failures);
        return 1;
      }
    }
  }
  std::printf("sg_chaos: %d triple(s), %d failure(s)\n", runs, failures);
  return failures > 0 ? 1 : 0;
}

// ---- serving-layer soak (--serve) ----------------------------------------

/// Serve soak matrix: the batched kernel's correctness depends on the
/// replication structure (lane masks cross the same mirror boundaries
/// as scalar labels) and the exec model, not on the benchmark — the
/// benchmark IS msbfs. Small matrix per the serving smoke contract.
std::vector<Scenario> serve_matrix(bool smoke) {
  using partition::Policy;
  const std::vector<Policy> policies =
      smoke ? std::vector<Policy>{Policy::OEC, Policy::CVC}
            : std::vector<Policy>{Policy::OEC, Policy::IEC, Policy::HVC,
                                  Policy::CVC};
  const std::vector<int> devices =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8};
  std::vector<Scenario> out;
  for (const auto p : policies) {
    for (const auto m : {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      for (const int d : devices) {
        out.push_back({fw::Benchmark::kBfs, p, m, d});
      }
    }
  }
  return out;
}

/// The 64 fused sources: a fixed stride over the chaos graph, so a
/// replayed reproducer needs no recorded source list.
std::vector<graph::VertexId> serve_sources() {
  const graph::VertexId n = chaos_graph().num_vertices();
  std::vector<graph::VertexId> src;
  src.reserve(algo::MsBfsProgram::kMaxSources);
  for (graph::VertexId i = 0; i < algo::MsBfsProgram::kMaxSources; ++i) {
    src.push_back((i * 9) % n);
  }
  return src;
}

algo::MsBfsResult run_serve_msbfs(const Scenario& s,
                                  const fault::FaultPlan* plan) {
  const fw::Prepared& prep = prepared_for(s.policy, s.devices);
  const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  engine::EngineConfig cfg = engine::make_variant(
      s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                          : engine::Variant::kVar4);
  cfg.fault_plan = plan;
  return algo::run_msbfs(prep.dist, prep.sync, topo, params, cfg,
                         serve_sources());
}

/// Per-lane bit-exact comparison of a fused msbfs run against the
/// unbatched single-source oracles.
Outcome serve_check(const std::vector<std::vector<std::uint32_t>>& oracle,
                    const algo::MsBfsResult& got) {
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    const Outcome o = compare_exact(
        oracle[i], got.dist[i],
        ("lane" + std::to_string(i) + " dist").c_str());
    if (o.failed()) return {"serve-lane-mismatch", o.detail};
  }
  return {};
}

fault::ChaosSpec serve_spec(const Scenario& s, int num_hosts,
                            sim::SimTime horizon, bool smoke) {
  fault::ChaosSpec spec;
  spec.num_devices = s.devices;
  spec.num_hosts = num_hosts;
  spec.horizon = horizon;
  // Device losses only: the contract under soak is exact per-lane
  // recovery through eviction + re-home, not anomaly tolerance (the
  // wire-protocol soak already covers message chaos for min-programs).
  spec.allow_drop = false;
  spec.allow_corrupt = false;
  spec.allow_duplicate = false;
  spec.allow_reorder = false;
  spec.allow_partition = false;
  spec.allow_straggler = false;
  spec.allow_loss = true;
  spec.min_events = 1;
  spec.max_events = smoke ? 1 : 2;
  return spec;
}

int do_serve(const Options& opt) {
  const int seeds = opt.seeds_per_scenario > 0 ? opt.seeds_per_scenario
                    : opt.smoke                ? 1
                                               : 2;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::vector<Scenario> scenarios = serve_matrix(opt.smoke);
  const std::vector<graph::VertexId> sources = serve_sources();
  std::printf("sg_chaos --serve: %zu scenarios x %d plan(s), %zu fused "
              "lanes, base seed %llu\n",
              scenarios.size(), seeds, sources.size(),
              static_cast<unsigned long long>(opt.seed));
  int failures = 0;
  int runs = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& s = scenarios[si];
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);

    // Unbatched oracles: one fault-free single-source BfsProgram run
    // per lane — the exact thing the fused run claims to replace.
    std::vector<std::vector<std::uint32_t>> oracle;
    algo::MsBfsResult fused;
    try {
      const fw::Prepared& prep = prepared_for(s.policy, s.devices);
      const sim::CostParams params = sim::CostParams::for_scaled_datasets();
      const engine::EngineConfig cfg = engine::make_variant(
          s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                              : engine::Variant::kVar4);
      oracle.reserve(sources.size());
      for (const graph::VertexId src : sources) {
        oracle.push_back(
            algo::run_bfs(prep.dist, prep.sync, topo, params, cfg, src)
                .dist);
      }
      fused = run_serve_msbfs(s, nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sg_chaos: %s oracle threw: %s\n",
                   label_of(s).c_str(), e.what());
      return 2;
    }
    // Fault-free fused run must already be bit-exact; a mismatch here
    // is a kernel bug, not a fault-tolerance bug — no plan to shrink.
    if (const Outcome o = serve_check(oracle, fused); o.failed()) {
      std::fprintf(stderr, "sg_chaos: %s fault-free msbfs diverged: %s\n",
                   label_of(s).c_str(), o.detail.c_str());
      return 2;
    }

    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed =
          opt.seed + 1000003ULL * (si + 1) + 7919ULL * k;
      fault::FaultPlan plan;
      try {
        plan = fault::random_plan(
            seed, serve_spec(s, topo.num_hosts(), fused.stats.total_time,
                             opt.smoke));
        plan.validate_or_throw(s.devices, topo.num_hosts());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_chaos: plan generation failed: %s\n",
                     e.what());
        return 2;
      }
      auto run_with = [&](const fault::FaultPlan& p) {
        algo::MsBfsResult r;
        Outcome o;
        try {
          r = run_serve_msbfs(s, &p);
          o = serve_check(oracle, r);
        } catch (const std::exception& e) {
          o = {"run-error", std::string("exception: ") + e.what()};
        }
        return std::pair<algo::MsBfsResult, Outcome>(std::move(r),
                                                     std::move(o));
      };
      auto [r, o] = run_with(plan);
      ++runs;
      if (!o.failed()) {
        const auto& f = r.stats.faults;
        std::printf(
            "[ok]   %-24s seed=%-12llu events=%zu evict=%llu rehomed=%llu "
            "rounds=%u\n",
            ("msbfs/" + label_of(s)).c_str(),
            static_cast<unsigned long long>(seed), plan.events.size(),
            static_cast<unsigned long long>(f.evicted_devices),
            static_cast<unsigned long long>(f.rehomed_masters),
            r.stats.global_rounds);
        continue;
      }
      ++failures;
      std::printf("[FAIL] %-24s seed=%llu: %s (%s)\n",
                  ("msbfs/" + label_of(s)).c_str(),
                  static_cast<unsigned long long>(seed), o.kind.c_str(),
                  o.detail.c_str());
      fault::FaultPlan minimal = plan;
      fault::ShrinkStats shrink_stats;
      if (opt.shrink) {
        const auto fails = [&](const fault::FaultPlan& cand) {
          if (!cand.validate(s.devices, topo.num_hosts()).empty()) {
            return false;
          }
          return run_with(cand).second.kind == o.kind;
        };
        minimal = fault::shrink_plan(plan, fails, &shrink_stats);
        std::printf(
            "       shrunk %zu -> %zu event(s) in %d probe(s)\n",
            plan.events.size(), minimal.events.size(), shrink_stats.probes);
      }
      const std::filesystem::path repro =
          std::filesystem::path(opt.out_dir) /
          ("chaos_repro_serve_" + sanitize(label_of(s)) + "_seed" +
           std::to_string(seed) + ".json");
      write_reproducer(repro, s, true, minimal, o,
                       opt.shrink ? &shrink_stats : nullptr, nullptr,
                       nullptr, /*serve=*/true);
      std::printf("       reproducer: %s (replay with --replay)\n",
                  repro.string().c_str());
      const std::string fdump = dump_flight(repro);
      if (!fdump.empty()) {
        std::printf("       flight dump: %s\n", fdump.c_str());
      }
      if (!opt.keep_going) {
        std::printf("sg_chaos: stopping at first failure "
                    "(--keep-going to continue)\n");
        std::printf("sg_chaos: %d run(s), %d failure(s)\n", runs, failures);
        return 1;
      }
    }
  }
  std::printf("sg_chaos: %d run(s), %d failure(s)\n", runs, failures);
  return failures > 0 ? 1 : 0;
}

// ---- serve-overload soak (--serve-overload) ------------------------------

/// The scheduler soak's own graph: symmetric (so the brownout landmark
/// triangle bound is sound) with community structure and randomized
/// sssp weights — the chaos_graph() is asymmetric and unusable here.
const graph::Csr& overload_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 1024;
    s.edges = 8000;
    s.zipf_out = 0.6;
    s.zipf_in = 0.6;
    s.communities = 4;
    s.symmetric = true;
    s.seed = 13;
    return graph::add_symmetric_weights(graph::synthetic(s), 1, 64, 13);
  }();
  return g;
}

const fw::Prepared& overload_prepared(partition::Policy policy, int devices) {
  static std::map<std::string, fw::Prepared> cache;
  const std::string key = std::string(partition::to_string(policy)) + "/" +
                          std::to_string(devices);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, fw::prepare(overload_graph(), policy, devices))
             .first;
  }
  return it->second;
}

/// 4x-overload trace: arrivals far above the fused-batch service rate,
/// tight deadline slack so the brownout deadline signal and lifecycle
/// expiry have something to act on. No PPR lanes — accumulator
/// recovery under device loss is the checkpoint layer's story
/// (test_fault), and the degraded path only covers distance queries.
serve::WorkloadSpec overload_workload(std::uint64_t seed, double factor) {
  serve::WorkloadSpec w;
  w.num_queries = 700;
  w.num_tenants = 4;
  w.arrival_rate_qps = 60000.0 * factor;
  w.tenant_skew = 1.2;
  w.source_skew = 0.7;
  // A source pool wider than the per-home cache budget: the cold
  // phase never ends, so fused engine runs keep the queue under
  // pressure for the whole trace instead of collapsing to cache hits.
  w.source_pool = 320;
  w.bfs_frac = 0.55;
  w.khop_frac = 0.15;
  w.ppr_frac = 0.0;
  w.deadline_slack_lo_ms = 0.5;
  w.deadline_slack_hi_ms = 8.0;
  w.priorities = 3;
  w.seed = seed;
  return w;
}

/// Resilient (or twin / defect) scheduler config for the soak. Token
/// buckets are left wide open: overload must reach the queue so the
/// brownout controller — not the admission layer — is what's under
/// test.
serve::ServeConfig overload_serve_cfg(bool brownout, bool defect) {
  serve::ServeConfig c;
  c.max_queue_depth = 256;
  c.default_limits = {.rate_qps = 1e6, .burst = 1024.0, .max_queued = 256};
  c.dist_cache_capacity = 192;
  c.ppr_cache_capacity = 64;
  c.brownout.enabled = brownout && !defect;
  c.lifecycle.enabled = true;
  c.reshard.enabled = true;
  c.reshard.num_homes = 2;
  // 4 tenants over 2 homes: the Zipf-1.2 head puts ~1.34x the mean on
  // home 0 — above this soak threshold, below the production default.
  c.reshard.imbalance_on = 1.3;
  c.reshard.imbalance_off = 1.1;
  if (defect) {
    // The self-test defect: every engine attempt fails and nothing
    // retries, so every queued query collapses to kEngineFailed and
    // the serve-floor check below MUST trip.
    c.lifecycle.fail_attempts = 1000000;
    c.lifecycle.max_retries = 0;
  }
  return c;
}

/// Served-fraction floor for the resilient leg (check 4): even at 4x
/// overload with a device lost, brownout answers or explicitly rejects
/// — it never collapses below this fraction of admitted queries.
constexpr double kOverloadServeFloor = 0.5;

/// Memoized sequential oracles over the overload graph.
class ServeOracle {
 public:
  const std::vector<std::uint32_t>& bfs(graph::VertexId s) {
    auto it = bfs_.find(s);
    if (it == bfs_.end()) {
      it = bfs_.emplace(s, algo::reference::bfs(overload_graph(), s)).first;
    }
    return it->second;
  }
  const std::vector<std::uint64_t>& sssp(graph::VertexId s) {
    auto it = sssp_.find(s);
    if (it == sssp_.end()) {
      it = sssp_.emplace(s, algo::reference::sssp(overload_graph(), s)).first;
    }
    return it->second;
  }

 private:
  std::map<graph::VertexId, std::vector<std::uint32_t>> bfs_;
  std::map<graph::VertexId, std::vector<std::uint64_t>> sssp_;
};

/// Checks one answer of the overload trace (contract items 1-3).
std::string overload_answer_check(const serve::Query& q,
                                  const serve::Answer& a,
                                  ServeOracle& oracle) {
  if (!a.served) {
    if (a.reject_reason == serve::RejectReason::kNone) {
      return "silently dropped: neither served nor rejected-with-reason";
    }
    return {};
  }
  const std::uint64_t bfs_truth =
      q.kind == serve::QueryKind::kBfsDist
          ? (oracle.bfs(q.source)[q.target] == algo::kInfDist
                 ? serve::kUnreachable
                 : oracle.bfs(q.source)[q.target])
          : 0;
  if (a.degraded) {
    std::uint64_t truth = serve::kUnreachable;
    if (q.kind == serve::QueryKind::kBfsDist) {
      truth = bfs_truth;
    } else if (q.kind == serve::QueryKind::kSsspDist) {
      truth = oracle.sssp(q.source)[q.target];
    } else {
      return "degraded answer on a non-distance query kind";
    }
    if (a.distance == serve::kUnreachable) {
      return "degraded answer is not a finite bound";
    }
    if (truth == serve::kUnreachable || a.distance < truth) {
      return "degraded bound " + std::to_string(a.distance) +
             " below true distance " + std::to_string(truth);
    }
    return {};
  }
  switch (q.kind) {
    case serve::QueryKind::kBfsDist:
      if (a.distance != bfs_truth) {
        return "bfs-dist " + std::to_string(a.distance) + " want " +
               std::to_string(bfs_truth);
      }
      return {};
    case serve::QueryKind::kSsspDist: {
      const std::uint64_t want = oracle.sssp(q.source)[q.target];
      if (a.distance != want) {
        return "sssp-dist " + std::to_string(a.distance) + " want " +
               std::to_string(want);
      }
      return {};
    }
    case serve::QueryKind::kKhopCount: {
      const auto& dist = oracle.bfs(q.source);
      std::uint64_t count = 0;
      std::uint64_t digest = util::kFnv1aOffset;
      for (graph::VertexId v = 0; v < dist.size(); ++v) {
        if (dist[v] <= q.k) {
          ++count;
          digest = util::fnv1a64_value(v, digest);
        }
      }
      if (a.khop_count != count || a.khop_digest != digest) {
        return "khop " + std::to_string(a.khop_count) + " want " +
               std::to_string(count);
      }
      return {};
    }
    case serve::QueryKind::kPprTopK:
      return "unexpected ppr answer in the overload trace";
  }
  return "unknown query kind";
}

double p0_hit_ratio(const serve::ServeReport& rep) {
  if (rep.by_priority.empty() || rep.by_priority[0].served == 0) return -1.0;
  return static_cast<double>(rep.by_priority[0].deadline_met) /
         static_cast<double>(rep.by_priority[0].served);
}

/// Runs one overload case (resilient scheduler + brownout-off twin
/// under the same trace and plan) and judges the five-point contract.
/// `out` receives the two reports for logging when non-null.
Outcome run_overload_case(const Scenario& s, const fault::FaultPlan* plan,
                          const OverloadRepro& ov,
                          std::pair<serve::ServeReport,
                                    serve::ServeReport>* out = nullptr) {
  const fw::Prepared& prep = overload_prepared(s.policy, s.devices);
  const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  engine::EngineConfig cfg = engine::make_variant(
      s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                          : engine::Variant::kVar4);
  cfg.fault_plan = plan;
  const std::vector<serve::Query> trace = serve::generate_workload(
      overload_workload(ov.workload_seed, ov.factor),
      overload_graph().num_vertices());

  const auto replay = [&](bool brownout) {
    serve::BatchScheduler sched(prep.dist, prep.sync, topo, params, cfg,
                                overload_serve_cfg(brownout, ov.defect));
    std::vector<serve::Answer> answers = sched.run(trace);
    return std::pair<std::vector<serve::Answer>, serve::ServeReport>(
        std::move(answers), sched.report());
  };

  try {
    const auto [answers, rep] = replay(/*brownout=*/true);
    const auto [twin_answers, twin_rep] = replay(/*brownout=*/false);
    if (out != nullptr) *out = {rep, twin_rep};

    // 1-3: conservation, bit-exactness, degraded-bound soundness.
    ServeOracle oracle;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const std::string err =
          overload_answer_check(trace[i], answers[i], oracle);
      if (!err.empty()) {
        return {"overload-answer",
                "query " + std::to_string(trace[i].id) + " (tenant " +
                    std::to_string(trace[i].tenant) + "): " + err};
      }
    }
    if (rep.served + rep.rejected != rep.submitted) {
      return {"overload-conservation",
              "served " + std::to_string(rep.served) + " + rejected " +
                  std::to_string(rep.rejected) + " != submitted " +
                  std::to_string(rep.submitted)};
    }
    // 4: the resilient leg must keep serving (the self-test defect
    // collapses this on purpose).
    if (rep.admitted > 0 &&
        static_cast<double>(rep.served) <
            kOverloadServeFloor * static_cast<double>(rep.admitted)) {
      return {"overload-serve-floor",
              "served " + std::to_string(rep.served) + " of " +
                  std::to_string(rep.admitted) + " admitted (floor " +
                  obs::format_double(kOverloadServeFloor) + ")"};
    }
    // 5: brownout must not cost top-priority deadline hits vs the
    // brownout-off twin under identical trace + faults.
    const double hit = p0_hit_ratio(rep);
    const double twin_hit = p0_hit_ratio(twin_rep);
    if (!ov.defect && hit >= 0.0 && twin_hit >= 0.0 &&
        hit + 1e-9 < twin_hit) {
      std::ostringstream d;
      d << "priority-0 deadline-hit " << hit << " with brownout vs "
        << twin_hit << " without";
      return {"overload-p0-regression", d.str()};
    }
    return {};
  } catch (const std::exception& e) {
    return {"run-error", std::string("exception: ") + e.what()};
  }
}

/// Overload soak matrix: the robustness layer hooks the dispatch
/// boundary, whose behaviour varies with the replication structure and
/// exec model — benchmark is fixed (the scheduler picks its own
/// programs).
std::vector<Scenario> overload_matrix(bool smoke) {
  using partition::Policy;
  const std::vector<Policy> policies =
      smoke ? std::vector<Policy>{Policy::OEC, Policy::CVC}
            : std::vector<Policy>{Policy::OEC, Policy::IEC, Policy::HVC,
                                  Policy::CVC};
  std::vector<Scenario> out;
  for (const auto p : policies) {
    for (const auto m :
         {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      out.push_back({fw::Benchmark::kBfs, p, m, 4});
    }
  }
  return out;
}

/// Loss + gray degradation only: each fused engine run replays the
/// plan on its own local clock, so the horizon is one batch's
/// duration, not the trace makespan.
fault::ChaosSpec overload_spec(const Scenario& s, int num_hosts,
                               sim::SimTime horizon) {
  fault::ChaosSpec spec;
  spec.num_devices = s.devices;
  spec.num_hosts = num_hosts;
  spec.horizon = horizon;
  spec.allow_drop = false;
  spec.allow_corrupt = false;
  spec.allow_duplicate = false;
  spec.allow_reorder = false;
  spec.allow_partition = false;
  spec.allow_straggler = false;
  spec.allow_loss = true;
  spec.allow_degrade = true;
  spec.min_events = 1;
  spec.max_events = 2;
  return spec;
}

int do_serve_overload(const Options& opt) {
  const int seeds = opt.seeds_per_scenario > 0 ? opt.seeds_per_scenario
                    : opt.smoke                ? 1
                                               : 2;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::vector<Scenario> scenarios = overload_matrix(opt.smoke);
  std::printf("sg_chaos --serve-overload: %zu scenarios x %d plan(s), "
              "defect %s, base seed %llu\n",
              scenarios.size(), seeds,
              opt.inject_defect ? "ARMED (--inject-defect)" : "off",
              static_cast<unsigned long long>(opt.seed));
  int failures = 0;
  int runs = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& s = scenarios[si];
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    // Horizon probe: one fault-free batch over the widest lane set
    // gives the per-run clock window plan events must land inside.
    sim::SimTime horizon;
    try {
      const fw::Prepared& prep = overload_prepared(s.policy, s.devices);
      const sim::CostParams params = sim::CostParams::for_scaled_datasets();
      const engine::EngineConfig cfg = engine::make_variant(
          s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                              : engine::Variant::kVar4);
      std::vector<graph::VertexId> lanes;
      for (graph::VertexId i = 0; i < algo::MsBfsProgram::kMaxSources; ++i) {
        lanes.push_back((i * 7) % overload_graph().num_vertices());
      }
      horizon = algo::run_msbfs(prep.dist, prep.sync, topo, params, cfg,
                                lanes)
                    .stats.total_time;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sg_chaos: %s horizon probe threw: %s\n",
                   label_of(s).c_str(), e.what());
      return 2;
    }
    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed =
          opt.seed + 1000003ULL * (si + 1) + 7919ULL * k;
      OverloadRepro ov;
      ov.workload_seed = 42 + static_cast<std::uint64_t>(k);
      ov.factor = 4.0;
      ov.defect = opt.inject_defect;
      fault::FaultPlan plan;
      try {
        plan = fault::random_plan(
            seed, overload_spec(s, topo.num_hosts(), horizon));
        plan.validate_or_throw(s.devices, topo.num_hosts());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_chaos: plan generation failed: %s\n",
                     e.what());
        return 2;
      }
      std::pair<serve::ServeReport, serve::ServeReport> reps;
      const Outcome o = run_overload_case(s, &plan, ov, &reps);
      ++runs;
      if (!o.failed()) {
        const serve::ServeReport& r = reps.first;
        std::printf(
            "[ok]   %-24s seed=%-12llu events=%zu served=%llu/%llu "
            "degraded=%llu shed=%llu retries=%llu hedges=%llu migr=%llu "
            "tier=%d p0=%.3f (twin %.3f)\n",
            ("serve-ovl/" + label_of(s)).c_str(),
            static_cast<unsigned long long>(seed), plan.events.size(),
            static_cast<unsigned long long>(r.served),
            static_cast<unsigned long long>(r.submitted),
            static_cast<unsigned long long>(r.degraded_served),
            static_cast<unsigned long long>(
                r.rejected_by_reason[static_cast<std::size_t>(
                    serve::RejectReason::kBrownoutShed)]),
            static_cast<unsigned long long>(r.lifecycle.retries),
            static_cast<unsigned long long>(r.lifecycle.hedges),
            static_cast<unsigned long long>(r.reshard_migrations),
            r.brownout_peak_tier, p0_hit_ratio(reps.first),
            p0_hit_ratio(reps.second));
        continue;
      }
      ++failures;
      std::printf("[FAIL] %-24s seed=%llu: %s (%s)\n",
                  ("serve-ovl/" + label_of(s)).c_str(),
                  static_cast<unsigned long long>(seed), o.kind.c_str(),
                  o.detail.c_str());
      fault::FaultPlan minimal = plan;
      fault::ShrinkStats shrink_stats;
      if (opt.shrink) {
        const auto fails = [&](const fault::FaultPlan& cand) {
          if (!cand.validate(s.devices, topo.num_hosts()).empty()) {
            return false;
          }
          return run_overload_case(s, &cand, ov).kind == o.kind;
        };
        minimal = fault::shrink_plan(plan, fails, &shrink_stats);
        std::printf(
            "       shrunk %zu -> %zu event(s) in %d probe(s)\n",
            plan.events.size(), minimal.events.size(), shrink_stats.probes);
      }
      const std::filesystem::path repro =
          std::filesystem::path(opt.out_dir) /
          ("chaos_repro_overload_" + sanitize(label_of(s)) + "_seed" +
           std::to_string(seed) + ".json");
      write_reproducer(repro, s, true, minimal, o,
                       opt.shrink ? &shrink_stats : nullptr, nullptr,
                       nullptr, /*serve=*/false, &ov);
      std::printf("       reproducer: %s (replay with --replay)\n",
                  repro.string().c_str());
      const std::string fdump = dump_flight(repro);
      if (!fdump.empty()) {
        std::printf("       flight dump: %s\n", fdump.c_str());
      }
      if (!opt.keep_going) {
        std::printf("sg_chaos: stopping at first failure "
                    "(--keep-going to continue)\n");
        std::printf("sg_chaos: %d case(s), %d failure(s)\n", runs, failures);
        return 1;
      }
    }
  }
  std::printf("sg_chaos: %d case(s), %d failure(s)\n", runs, failures);
  return failures > 0 ? 1 : 0;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--smoke] [--gray] [--sdc] [--serve] [--serve-overload]"
      " [--chaos-seed N] [--seeds N] [--chaos-shrink] [--no-shrink]\n"
      "          [--inject-defect] [--keep-going] [--recovery-margin X]"
      " [--out-dir DIR]\n"
      "       %s --replay FILE\n",
      argv0, argv0);
  return 2;
}

int do_replay(const Options& opt) {
  std::ifstream in(opt.replay, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "sg_chaos: cannot open %s\n", opt.replay.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_chaos: %s: %s\n", opt.replay.c_str(), e.what());
    return 2;
  }
  const obs::JsonValue* schema = doc.find("sg_chaos_schema");
  if (schema == nullptr || static_cast<int>(schema->num_or(0)) != 1) {
    std::fprintf(stderr,
                 "sg_chaos: %s is not an sg_chaos reproducer (schema 1)\n",
                 opt.replay.c_str());
    return 2;
  }
  Scenario s;
  bool wire = true;
  bool gray = false;
  bool sdc = false;
  bool serve = false;
  bool overload = false;
  OverloadRepro ov;
  integrity::AuditPolicy sdc_pol;
  double margin = 0.0;
  fault::FaultPlan plan;
  std::string recorded_failure;
  try {
    const obs::JsonValue* sc = doc.find("scenario");
    if (sc == nullptr || !sc->is_object()) {
      throw std::runtime_error("missing scenario object");
    }
    s.bench = fw::benchmark_from_string(
        sc->find("benchmark")->str_or("bfs"));
    s.policy = partition::policy_from_string(
        sc->find("policy")->str_or("OEC"));
    const std::string model = sc->find("exec_model")->str_or("Sync");
    if (model != "Sync" && model != "Async") {
      throw std::runtime_error("unknown exec_model \"" + model + "\"");
    }
    s.model = model == "Sync" ? engine::ExecModel::kSync
                              : engine::ExecModel::kAsync;
    s.devices = static_cast<int>(sc->find("devices")->num_or(4));
    const obs::JsonValue* wp = sc->find("wire_protocol");
    wire = wp == nullptr || wp->kind != obs::JsonValue::Kind::kBool ||
           wp->boolean;
    const obs::JsonValue* pl = doc.find("plan");
    if (pl == nullptr) throw std::runtime_error("missing plan object");
    plan = fault::plan_from_json(*pl);
    const obs::JsonValue* gv = doc.find("gray");
    gray = gv != nullptr && gv->kind == obs::JsonValue::Kind::kBool &&
           gv->boolean;
    const obs::JsonValue* sv = doc.find("sdc");
    sdc = sv != nullptr && sv->kind == obs::JsonValue::Kind::kBool &&
          sv->boolean;
    const obs::JsonValue* serve_v = doc.find("serve");
    serve = serve_v != nullptr &&
            serve_v->kind == obs::JsonValue::Kind::kBool && serve_v->boolean;
    const obs::JsonValue* ov_v = doc.find("overload");
    overload = ov_v != nullptr &&
               ov_v->kind == obs::JsonValue::Kind::kBool && ov_v->boolean;
    if (overload) {
      const obs::JsonValue* ws = doc.find("workload_seed");
      ov.workload_seed = ws != nullptr
                             ? static_cast<std::uint64_t>(ws->num_or(42))
                             : 42;
      const obs::JsonValue* of = doc.find("overload_factor");
      ov.factor = of != nullptr ? of->num_or(4.0) : 4.0;
      const obs::JsonValue* df = doc.find("defect");
      ov.defect = df != nullptr &&
                  df->kind == obs::JsonValue::Kind::kBool && df->boolean;
    }
    if (sdc) {
      const obs::JsonValue* am = doc.find("audit_mode");
      const std::string mode = am != nullptr ? am->str_or("repair")
                                             : "repair";
      if (!integrity::audit_mode_from_string(mode, sdc_pol.mode)) {
        throw std::runtime_error("unknown audit_mode \"" + mode + "\"");
      }
      const obs::JsonValue* ai = doc.find("audit_interval");
      sdc_pol.interval_rounds =
          ai != nullptr ? static_cast<int>(ai->num_or(1)) : 1;
      sdc_pol.escalate_after = 1000;  // mirror do_sdc: eviction-free triple
    }
    const obs::JsonValue* mv = doc.find("recovery_margin");
    // Hand-written reproducers without a stored margin get the
    // per-kind fallback with no transient exemption (the oracle run
    // has not happened yet at parse time).
    margin = mv != nullptr ? mv->num_or(margin_for(plan, s.policy, 0.0))
                           : margin_for(plan, s.policy, 0.0);
    const obs::JsonValue* fail = doc.find("failure");
    recorded_failure = fail != nullptr ? fail->str_or("") : "";
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    plan.validate_or_throw(s.devices, topo.num_hosts());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sg_chaos: %s: %s\n", opt.replay.c_str(), e.what());
    return 2;
  }
  std::printf("replaying %s: %s, wire_protocol=%s%s%s%s%s, plan events: "
              "%zu\n",
              opt.replay.c_str(), label_of(s).c_str(),
              wire ? "on" : "off", gray ? ", gray triple" : "",
              sdc ? ", sdc triple" : "",
              serve ? ", serve (fused msbfs)" : "",
              overload ? ", serve-overload" : "", plan.events.size());
  if (overload) {
    std::pair<serve::ServeReport, serve::ServeReport> reps;
    const Outcome o = run_overload_case(s, &plan, ov, &reps);
    std::printf("overload: served=%llu/%llu degraded=%llu retries=%llu "
                "hedges=%llu migr=%llu tier=%d\n",
                static_cast<unsigned long long>(reps.first.served),
                static_cast<unsigned long long>(reps.first.submitted),
                static_cast<unsigned long long>(reps.first.degraded_served),
                static_cast<unsigned long long>(reps.first.lifecycle.retries),
                static_cast<unsigned long long>(reps.first.lifecycle.hedges),
                static_cast<unsigned long long>(
                    reps.first.reshard_migrations),
                reps.first.brownout_peak_tier);
    if (o.failed()) {
      std::printf("reproduced: %s (%s)%s\n", o.kind.c_str(),
                  o.detail.c_str(),
                  o.kind == recorded_failure
                      ? ""
                      : " [failure kind differs from recording]");
      return 1;
    }
    std::printf(
        "did not reproduce: case satisfied the overload contract\n");
    return 0;
  }
  if (serve) {
    // Unbatched per-lane oracles, then the fused run under the plan.
    const fw::Prepared& prep = prepared_for(s.policy, s.devices);
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    const sim::CostParams params = sim::CostParams::for_scaled_datasets();
    const engine::EngineConfig cfg = engine::make_variant(
        s.model == engine::ExecModel::kSync ? engine::Variant::kVar3
                                            : engine::Variant::kVar4);
    std::vector<std::vector<std::uint32_t>> lane_oracle;
    for (const graph::VertexId src : serve_sources()) {
      lane_oracle.push_back(
          algo::run_bfs(prep.dist, prep.sync, topo, params, cfg, src).dist);
    }
    Outcome o;
    try {
      const algo::MsBfsResult r = run_serve_msbfs(s, &plan);
      const auto& f = r.stats.faults;
      std::printf("serve: evict=%llu rehomed=%llu rounds=%u\n",
                  static_cast<unsigned long long>(f.evicted_devices),
                  static_cast<unsigned long long>(f.rehomed_masters),
                  r.stats.global_rounds);
      o = serve_check(lane_oracle, r);
    } catch (const std::exception& e) {
      o = {"run-error", std::string("exception: ") + e.what()};
    }
    if (o.failed()) {
      std::printf("reproduced: %s (%s)%s\n", o.kind.c_str(), o.detail.c_str(),
                  o.kind == recorded_failure
                      ? ""
                      : " [failure kind differs from recording]");
      return 1;
    }
    std::printf(
        "did not reproduce: every msbfs lane matched its unbatched oracle\n");
    return 0;
  }
  const fw::BenchmarkRun oracle = run_scenario(s, nullptr, true);
  if (!oracle.ok) {
    std::fprintf(stderr, "sg_chaos: oracle run failed: %s\n",
                 oracle.error.c_str());
    return 2;
  }
  if (sdc) {
    const fw::BenchmarkRun twin = run_scenario(s, &plan, wire);
    const fw::BenchmarkRun audited =
        run_scenario(s, &plan, wire, nullptr, &sdc_pol);
    if (audited.ok) {
      const fault::FaultStats& f = audited.stats.faults;
      std::printf(
          "sdc: inj=%llu det=%llu rep=%llu audits=%llu rollback=%llu "
          "escal=%llu\n",
          static_cast<unsigned long long>(f.sdc_injected),
          static_cast<unsigned long long>(f.sdc_detected),
          static_cast<unsigned long long>(f.sdc_repaired),
          static_cast<unsigned long long>(f.sdc_audits),
          static_cast<unsigned long long>(f.rollbacks),
          static_cast<unsigned long long>(f.sdc_escalations));
    }
    const Outcome o = sdc_check(s, oracle, twin, audited, sdc_pol);
    if (o.failed()) {
      std::printf("reproduced: %s (%s)%s\n", o.kind.c_str(),
                  o.detail.c_str(),
                  o.kind == recorded_failure
                      ? ""
                      : " [failure kind differs from recording]");
      return 1;
    }
    std::printf("did not reproduce: triple satisfied the SDC oracle\n");
    return 0;
  }
  if (gray) {
    const sim::SimTime beat =
        oracle.stats.total_time * (1.0 / kGrayBeatsPerRun);
    GrayTuning observe{fault::MitigationMode::kObserve, beat};
    GrayTuning migrate{fault::MitigationMode::kMigrate, beat};
    const fw::BenchmarkRun b = run_scenario(s, &plan, wire, &observe);
    const fw::BenchmarkRun c = run_scenario(s, &plan, wire, &migrate);
    if (c.ok) {
      const fault::FaultStats& f = c.stats.faults;
      std::printf(
          "gray: alerts=%llu migr=%llu evict=%llu moved_masters=%llu "
          "spill=%llu B\n",
          static_cast<unsigned long long>(f.gray_alerts),
          static_cast<unsigned long long>(f.gray_migrations),
          static_cast<unsigned long long>(f.gray_evictions),
          static_cast<unsigned long long>(f.gray_migrated_masters),
          static_cast<unsigned long long>(f.spill_bytes));
    }
    const Outcome o = gray_check(s, oracle, b, c, margin);
    if (o.failed()) {
      std::printf("reproduced: %s (%s)%s\n", o.kind.c_str(),
                  o.detail.c_str(),
                  o.kind == recorded_failure
                      ? ""
                      : " [failure kind differs from recording]");
      return 1;
    }
    std::printf("did not reproduce: triple satisfied the SLO oracle\n");
    return 0;
  }
  const fw::BenchmarkRun r = run_scenario(s, &plan, wire);
  if (r.ok) {
    const fault::FaultStats& f = r.stats.faults;
    std::printf(
        "faults: ckpt=%llu rollback=%llu evict=%llu rehomed=%llu "
        "deferred=%llu fenced=%llu drop=%llu corrupt=%llu dup=%llu "
        "reorder=%llu\n",
        static_cast<unsigned long long>(f.checkpoints_taken),
        static_cast<unsigned long long>(f.rollbacks),
        static_cast<unsigned long long>(f.evicted_devices),
        static_cast<unsigned long long>(f.rehomed_masters),
        static_cast<unsigned long long>(f.partition_deferred),
        static_cast<unsigned long long>(f.fence_rejects),
        static_cast<unsigned long long>(f.messages_dropped),
        static_cast<unsigned long long>(f.messages_corrupted),
        static_cast<unsigned long long>(f.duplicates_injected),
        static_cast<unsigned long long>(f.reorders_injected));
  }
  const Outcome o = check(s, oracle, r);
  if (o.failed()) {
    std::printf("reproduced: %s (%s)%s\n", o.kind.c_str(),
                o.detail.c_str(),
                o.kind == recorded_failure ? "" : " [failure kind differs"
                                                  " from recording]");
    return 1;
  }
  std::printf("did not reproduce: run matched the fault-free oracle\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sg_chaos: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--smoke") {
      opt.smoke = true;
    } else if (a == "--gray") {
      opt.gray = true;
    } else if (a == "--sdc") {
      opt.sdc = true;
    } else if (a == "--serve") {
      opt.serve = true;
    } else if (a == "--serve-overload") {
      opt.serve_overload = true;
    } else if (a == "--recovery-margin") {
      const char* v = need_value("--recovery-margin");
      if (v == nullptr) return 2;
      opt.recovery_margin = std::atof(v);
    } else if (a == "--chaos-seed") {
      const char* v = need_value("--chaos-seed");
      if (v == nullptr) return 2;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--seeds") {
      const char* v = need_value("--seeds");
      if (v == nullptr) return 2;
      opt.seeds_per_scenario = std::atoi(v);
      if (opt.seeds_per_scenario <= 0) return usage(argv[0]);
    } else if (a == "--chaos-shrink") {
      opt.shrink = true;
    } else if (a == "--no-shrink") {
      opt.shrink = false;
    } else if (a == "--inject-defect") {
      opt.inject_defect = true;
    } else if (a == "--keep-going") {
      opt.keep_going = true;
    } else if (a == "--out-dir") {
      const char* v = need_value("--out-dir");
      if (v == nullptr) return 2;
      opt.out_dir = v;
    } else if (a == "--replay") {
      const char* v = need_value("--replay");
      if (v == nullptr) return 2;
      opt.replay = v;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "sg_chaos: unknown flag %s\n", a.c_str());
      return usage(argv[0]);
    }
  }
  if (!opt.replay.empty()) return do_replay(opt);
  if (static_cast<int>(opt.sdc) + static_cast<int>(opt.gray) +
          static_cast<int>(opt.serve) +
          static_cast<int>(opt.serve_overload) >
      1) {
    std::fprintf(stderr, "sg_chaos: --sdc, --gray, --serve, and "
                         "--serve-overload are exclusive\n");
    return usage(argv[0]);
  }
  if (opt.sdc) return do_sdc(opt);
  if (opt.gray) return do_gray(opt);
  if (opt.serve) return do_serve(opt);
  if (opt.serve_overload) return do_serve_overload(opt);
  const int seeds = opt.seeds_per_scenario > 0 ? opt.seeds_per_scenario
                    : opt.smoke                ? 1
                                               : 2;
  const bool wire = !opt.inject_defect;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);

  const std::vector<Scenario> scenarios = scenario_matrix(opt.smoke);
  std::printf("sg_chaos: %zu scenarios x %d plan(s), wire protocol %s, "
              "base seed %llu\n",
              scenarios.size(), seeds, wire ? "ON" : "OFF (--inject-defect)",
              static_cast<unsigned long long>(opt.seed));
  int failures = 0;
  int runs = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& s = scenarios[si];
    const sim::Topology topo = sim::Topology::bridges(s.devices, kMemScale);
    fw::BenchmarkRun oracle;
    try {
      oracle = run_scenario(s, nullptr, true);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sg_chaos: %s oracle threw: %s\n",
                   label_of(s).c_str(), e.what());
      return 2;
    }
    if (!oracle.ok) {
      std::fprintf(stderr, "sg_chaos: %s oracle failed: %s\n",
                   label_of(s).c_str(), oracle.error.c_str());
      return 2;
    }
    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed =
          opt.seed + 1000003ULL * (si + 1) + 7919ULL * k;
      fault::ChaosSpec spec;
      spec.num_devices = s.devices;
      spec.num_hosts = topo.num_hosts();
      spec.horizon = oracle.stats.total_time;
      fault::FaultPlan plan;
      try {
        plan = fault::random_plan(seed, spec);
        plan.validate_or_throw(s.devices, topo.num_hosts());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sg_chaos: plan generation failed: %s\n",
                     e.what());
        return 2;
      }
      fw::BenchmarkRun r;
      try {
        r = run_scenario(s, &plan, wire);
      } catch (const std::exception& e) {
        r.ok = false;
        r.error = std::string("exception: ") + e.what();
      }
      ++runs;
      const Outcome o = check(s, oracle, r);
      if (!o.failed()) {
        const auto& f = r.stats.faults;
        std::printf(
            "[ok]   %-24s seed=%-12llu events=%zu  "
            "drop=%llu corrupt=%llu dup=%llu reorder=%llu deferred=%llu\n",
            label_of(s).c_str(), static_cast<unsigned long long>(seed),
            plan.events.size(),
            static_cast<unsigned long long>(f.messages_dropped),
            static_cast<unsigned long long>(f.messages_corrupted),
            static_cast<unsigned long long>(f.duplicates_injected),
            static_cast<unsigned long long>(f.reorders_injected),
            static_cast<unsigned long long>(f.partition_deferred));
        continue;
      }
      ++failures;
      std::printf("[FAIL] %-24s seed=%llu: %s (%s)\n", label_of(s).c_str(),
                  static_cast<unsigned long long>(seed), o.kind.c_str(),
                  o.detail.c_str());
      fault::FaultPlan minimal = plan;
      fault::ShrinkStats shrink_stats;
      if (opt.shrink) {
        const auto fails = [&](const fault::FaultPlan& cand) {
          if (!cand.validate(s.devices, topo.num_hosts()).empty()) {
            return false;
          }
          fw::BenchmarkRun rr;
          try {
            rr = run_scenario(s, &cand, wire);
          } catch (const std::exception&) {
            return false;
          }
          return check(s, oracle, rr).kind == o.kind;
        };
        minimal = fault::shrink_plan(plan, fails, &shrink_stats);
        std::printf(
            "       shrunk %zu -> %zu event(s) in %d probe(s)\n",
            plan.events.size(), minimal.events.size(), shrink_stats.probes);
      }
      const std::filesystem::path repro =
          std::filesystem::path(opt.out_dir) /
          ("chaos_repro_" + sanitize(label_of(s)) + "_seed" +
           std::to_string(seed) + ".json");
      write_reproducer(repro, s, wire, minimal, o,
                       opt.shrink ? &shrink_stats : nullptr);
      std::printf("       reproducer: %s (replay with --replay)\n",
                  repro.string().c_str());
      const std::string fdump = dump_flight(repro);
      if (!fdump.empty()) {
        std::printf("       flight dump: %s\n", fdump.c_str());
      }
      if (!opt.keep_going) {
        std::printf("sg_chaos: stopping at first failure "
                    "(--keep-going to continue)\n");
        std::printf("sg_chaos: %d run(s), %d failure(s)\n", runs, failures);
        return 1;
      }
    }
  }
  std::printf("sg_chaos: %d run(s), %d failure(s)\n", runs, failures);
  return failures > 0 ? 1 : 0;
}
