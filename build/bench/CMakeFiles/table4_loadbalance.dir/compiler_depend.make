# Empty compiler generated dependencies file for table4_loadbalance.
# This may be replaced when dependencies are built.
