file(REMOVE_RECURSE
  "CMakeFiles/table4_loadbalance.dir/table4_loadbalance.cpp.o"
  "CMakeFiles/table4_loadbalance.dir/table4_loadbalance.cpp.o.d"
  "table4_loadbalance"
  "table4_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
