file(REMOVE_RECURSE
  "CMakeFiles/abl3_cvc_grid.dir/abl3_cvc_grid.cpp.o"
  "CMakeFiles/abl3_cvc_grid.dir/abl3_cvc_grid.cpp.o.d"
  "abl3_cvc_grid"
  "abl3_cvc_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_cvc_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
