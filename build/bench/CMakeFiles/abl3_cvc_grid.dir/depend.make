# Empty dependencies file for abl3_cvc_grid.
# This may be replaced when dependencies are built.
