file(REMOVE_RECURSE
  "CMakeFiles/fig8_breakdown_policies32.dir/fig8_breakdown_policies32.cpp.o"
  "CMakeFiles/fig8_breakdown_policies32.dir/fig8_breakdown_policies32.cpp.o.d"
  "fig8_breakdown_policies32"
  "fig8_breakdown_policies32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_breakdown_policies32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
