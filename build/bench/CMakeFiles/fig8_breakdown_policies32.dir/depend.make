# Empty dependencies file for fig8_breakdown_policies32.
# This may be replaced when dependencies are built.
