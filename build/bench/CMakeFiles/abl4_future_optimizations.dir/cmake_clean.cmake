file(REMOVE_RECURSE
  "CMakeFiles/abl4_future_optimizations.dir/abl4_future_optimizations.cpp.o"
  "CMakeFiles/abl4_future_optimizations.dir/abl4_future_optimizations.cpp.o.d"
  "abl4_future_optimizations"
  "abl4_future_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_future_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
