# Empty compiler generated dependencies file for abl4_future_optimizations.
# This may be replaced when dependencies are built.
