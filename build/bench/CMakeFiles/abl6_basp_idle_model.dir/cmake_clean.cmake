file(REMOVE_RECURSE
  "CMakeFiles/abl6_basp_idle_model.dir/abl6_basp_idle_model.cpp.o"
  "CMakeFiles/abl6_basp_idle_model.dir/abl6_basp_idle_model.cpp.o.d"
  "abl6_basp_idle_model"
  "abl6_basp_idle_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl6_basp_idle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
