# Empty dependencies file for abl6_basp_idle_model.
# This may be replaced when dependencies are built.
