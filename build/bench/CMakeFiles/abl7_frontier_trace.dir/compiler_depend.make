# Empty compiler generated dependencies file for abl7_frontier_trace.
# This may be replaced when dependencies are built.
