file(REMOVE_RECURSE
  "CMakeFiles/abl7_frontier_trace.dir/abl7_frontier_trace.cpp.o"
  "CMakeFiles/abl7_frontier_trace.dir/abl7_frontier_trace.cpp.o.d"
  "abl7_frontier_trace"
  "abl7_frontier_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl7_frontier_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
