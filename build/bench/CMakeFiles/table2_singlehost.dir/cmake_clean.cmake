file(REMOVE_RECURSE
  "CMakeFiles/table2_singlehost.dir/table2_singlehost.cpp.o"
  "CMakeFiles/table2_singlehost.dir/table2_singlehost.cpp.o.d"
  "table2_singlehost"
  "table2_singlehost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_singlehost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
