# Empty dependencies file for table2_singlehost.
# This may be replaced when dependencies are built.
