# Empty compiler generated dependencies file for fig3_scaling_variants.
# This may be replaced when dependencies are built.
