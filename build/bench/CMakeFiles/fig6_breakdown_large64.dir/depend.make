# Empty dependencies file for fig6_breakdown_large64.
# This may be replaced when dependencies are built.
