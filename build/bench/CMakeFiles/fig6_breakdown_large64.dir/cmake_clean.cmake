file(REMOVE_RECURSE
  "CMakeFiles/fig6_breakdown_large64.dir/fig6_breakdown_large64.cpp.o"
  "CMakeFiles/fig6_breakdown_large64.dir/fig6_breakdown_large64.cpp.o.d"
  "fig6_breakdown_large64"
  "fig6_breakdown_large64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_breakdown_large64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
