file(REMOVE_RECURSE
  "CMakeFiles/fig9_breakdown_policies64.dir/fig9_breakdown_policies64.cpp.o"
  "CMakeFiles/fig9_breakdown_policies64.dir/fig9_breakdown_policies64.cpp.o.d"
  "fig9_breakdown_policies64"
  "fig9_breakdown_policies64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_breakdown_policies64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
