# Empty compiler generated dependencies file for fig9_breakdown_policies64.
# This may be replaced when dependencies are built.
