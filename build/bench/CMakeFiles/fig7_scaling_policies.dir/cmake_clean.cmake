file(REMOVE_RECURSE
  "CMakeFiles/fig7_scaling_policies.dir/fig7_scaling_policies.cpp.o"
  "CMakeFiles/fig7_scaling_policies.dir/fig7_scaling_policies.cpp.o.d"
  "fig7_scaling_policies"
  "fig7_scaling_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scaling_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
