# Empty compiler generated dependencies file for abl5_ordered_worklists.
# This may be replaced when dependencies are built.
