file(REMOVE_RECURSE
  "CMakeFiles/abl5_ordered_worklists.dir/abl5_ordered_worklists.cpp.o"
  "CMakeFiles/abl5_ordered_worklists.dir/abl5_ordered_worklists.cpp.o.d"
  "abl5_ordered_worklists"
  "abl5_ordered_worklists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_ordered_worklists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
