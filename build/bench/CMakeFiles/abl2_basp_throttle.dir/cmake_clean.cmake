file(REMOVE_RECURSE
  "CMakeFiles/abl2_basp_throttle.dir/abl2_basp_throttle.cpp.o"
  "CMakeFiles/abl2_basp_throttle.dir/abl2_basp_throttle.cpp.o.d"
  "abl2_basp_throttle"
  "abl2_basp_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_basp_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
