# Empty dependencies file for abl2_basp_throttle.
# This may be replaced when dependencies are built.
