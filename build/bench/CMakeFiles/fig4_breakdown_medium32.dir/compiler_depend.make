# Empty compiler generated dependencies file for fig4_breakdown_medium32.
# This may be replaced when dependencies are built.
