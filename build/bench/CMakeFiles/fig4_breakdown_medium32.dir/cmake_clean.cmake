file(REMOVE_RECURSE
  "CMakeFiles/fig4_breakdown_medium32.dir/fig4_breakdown_medium32.cpp.o"
  "CMakeFiles/fig4_breakdown_medium32.dir/fig4_breakdown_medium32.cpp.o.d"
  "fig4_breakdown_medium32"
  "fig4_breakdown_medium32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_breakdown_medium32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
