file(REMOVE_RECURSE
  "CMakeFiles/fig5_breakdown_lux4.dir/fig5_breakdown_lux4.cpp.o"
  "CMakeFiles/fig5_breakdown_lux4.dir/fig5_breakdown_lux4.cpp.o.d"
  "fig5_breakdown_lux4"
  "fig5_breakdown_lux4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_breakdown_lux4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
