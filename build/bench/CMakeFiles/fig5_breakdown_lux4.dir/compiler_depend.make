# Empty compiler generated dependencies file for fig5_breakdown_lux4.
# This may be replaced when dependencies are built.
