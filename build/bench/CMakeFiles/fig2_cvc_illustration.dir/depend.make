# Empty dependencies file for fig2_cvc_illustration.
# This may be replaced when dependencies are built.
