file(REMOVE_RECURSE
  "CMakeFiles/fig2_cvc_illustration.dir/fig2_cvc_illustration.cpp.o"
  "CMakeFiles/fig2_cvc_illustration.dir/fig2_cvc_illustration.cpp.o.d"
  "fig2_cvc_illustration"
  "fig2_cvc_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cvc_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
