file(REMOVE_RECURSE
  "CMakeFiles/abl1_uo_threshold.dir/abl1_uo_threshold.cpp.o"
  "CMakeFiles/abl1_uo_threshold.dir/abl1_uo_threshold.cpp.o.d"
  "abl1_uo_threshold"
  "abl1_uo_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_uo_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
