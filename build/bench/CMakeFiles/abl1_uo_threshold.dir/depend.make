# Empty dependencies file for abl1_uo_threshold.
# This may be replaced when dependencies are built.
