file(REMOVE_RECURSE
  "CMakeFiles/partition_store_workflow.dir/partition_store_workflow.cpp.o"
  "CMakeFiles/partition_store_workflow.dir/partition_store_workflow.cpp.o.d"
  "partition_store_workflow"
  "partition_store_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_store_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
