# Empty compiler generated dependencies file for partition_store_workflow.
# This may be replaced when dependencies are built.
