# Empty compiler generated dependencies file for webcrawl_analytics.
# This may be replaced when dependencies are built.
