file(REMOVE_RECURSE
  "CMakeFiles/webcrawl_analytics.dir/webcrawl_analytics.cpp.o"
  "CMakeFiles/webcrawl_analytics.dir/webcrawl_analytics.cpp.o.d"
  "webcrawl_analytics"
  "webcrawl_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcrawl_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
