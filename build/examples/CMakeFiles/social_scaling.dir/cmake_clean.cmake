file(REMOVE_RECURSE
  "CMakeFiles/social_scaling.dir/social_scaling.cpp.o"
  "CMakeFiles/social_scaling.dir/social_scaling.cpp.o.d"
  "social_scaling"
  "social_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
