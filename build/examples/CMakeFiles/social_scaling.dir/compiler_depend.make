# Empty compiler generated dependencies file for social_scaling.
# This may be replaced when dependencies are built.
