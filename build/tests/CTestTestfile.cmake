# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_graph "/root/repo/build/tests/test_graph")
set_tests_properties(test_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_partition "/root/repo/build/tests/test_partition")
set_tests_properties(test_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_engine "/root/repo/build/tests/test_engine")
set_tests_properties(test_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_algo "/root/repo/build/tests/test_algo")
set_tests_properties(test_algo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_algo_async "/root/repo/build/tests/test_algo_async")
set_tests_properties(test_algo_async PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fw "/root/repo/build/tests/test_fw")
set_tests_properties(test_fw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_termination "/root/repo/build/tests/test_termination")
set_tests_properties(test_termination PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_algo_ext "/root/repo/build/tests/test_algo_ext")
set_tests_properties(test_algo_ext PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_property_fuzz "/root/repo/build/tests/test_property_fuzz")
set_tests_properties(test_property_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;sg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_streaming "/root/repo/build/tests/test_streaming")
set_tests_properties(test_streaming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;sg_test;/root/repo/tests/CMakeLists.txt;0;")
