# Empty dependencies file for test_algo.
# This may be replaced when dependencies are built.
