file(REMOVE_RECURSE
  "CMakeFiles/test_algo_async.dir/test_algo_async.cpp.o"
  "CMakeFiles/test_algo_async.dir/test_algo_async.cpp.o.d"
  "test_algo_async"
  "test_algo_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
