file(REMOVE_RECURSE
  "CMakeFiles/test_fw.dir/test_fw.cpp.o"
  "CMakeFiles/test_fw.dir/test_fw.cpp.o.d"
  "test_fw"
  "test_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
