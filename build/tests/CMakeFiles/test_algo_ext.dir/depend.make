# Empty dependencies file for test_algo_ext.
# This may be replaced when dependencies are built.
