file(REMOVE_RECURSE
  "CMakeFiles/test_algo_ext.dir/test_algo_ext.cpp.o"
  "CMakeFiles/test_algo_ext.dir/test_algo_ext.cpp.o.d"
  "test_algo_ext"
  "test_algo_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
