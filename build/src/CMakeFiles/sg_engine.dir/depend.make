# Empty dependencies file for sg_engine.
# This may be replaced when dependencies are built.
