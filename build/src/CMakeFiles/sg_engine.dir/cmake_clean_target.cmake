file(REMOVE_RECURSE
  "libsg_engine.a"
)
