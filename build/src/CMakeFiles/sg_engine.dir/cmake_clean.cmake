file(REMOVE_RECURSE
  "CMakeFiles/sg_engine.dir/engine/load_balancer.cpp.o"
  "CMakeFiles/sg_engine.dir/engine/load_balancer.cpp.o.d"
  "CMakeFiles/sg_engine.dir/engine/termination.cpp.o"
  "CMakeFiles/sg_engine.dir/engine/termination.cpp.o.d"
  "libsg_engine.a"
  "libsg_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
