# Empty compiler generated dependencies file for sg_graph.
# This may be replaced when dependencies are built.
