file(REMOVE_RECURSE
  "libsg_graph.a"
)
