file(REMOVE_RECURSE
  "CMakeFiles/sg_graph.dir/graph/csr.cpp.o"
  "CMakeFiles/sg_graph.dir/graph/csr.cpp.o.d"
  "CMakeFiles/sg_graph.dir/graph/datasets.cpp.o"
  "CMakeFiles/sg_graph.dir/graph/datasets.cpp.o.d"
  "CMakeFiles/sg_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/sg_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/sg_graph.dir/graph/io.cpp.o"
  "CMakeFiles/sg_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/sg_graph.dir/graph/properties.cpp.o"
  "CMakeFiles/sg_graph.dir/graph/properties.cpp.o.d"
  "CMakeFiles/sg_graph.dir/graph/validation.cpp.o"
  "CMakeFiles/sg_graph.dir/graph/validation.cpp.o.d"
  "libsg_graph.a"
  "libsg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
