# Empty dependencies file for sg_comm.
# This may be replaced when dependencies are built.
