file(REMOVE_RECURSE
  "libsg_comm.a"
)
