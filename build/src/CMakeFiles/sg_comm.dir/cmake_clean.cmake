file(REMOVE_RECURSE
  "CMakeFiles/sg_comm.dir/comm/sync_structure.cpp.o"
  "CMakeFiles/sg_comm.dir/comm/sync_structure.cpp.o.d"
  "libsg_comm.a"
  "libsg_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
