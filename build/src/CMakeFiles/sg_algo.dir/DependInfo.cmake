
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/bfs.cpp" "src/CMakeFiles/sg_algo.dir/algo/bfs.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/bfs.cpp.o.d"
  "/root/repo/src/algo/cc.cpp" "src/CMakeFiles/sg_algo.dir/algo/cc.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/cc.cpp.o.d"
  "/root/repo/src/algo/dobfs.cpp" "src/CMakeFiles/sg_algo.dir/algo/dobfs.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/dobfs.cpp.o.d"
  "/root/repo/src/algo/kcore.cpp" "src/CMakeFiles/sg_algo.dir/algo/kcore.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/kcore.cpp.o.d"
  "/root/repo/src/algo/pagerank.cpp" "src/CMakeFiles/sg_algo.dir/algo/pagerank.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/pagerank.cpp.o.d"
  "/root/repo/src/algo/ppr.cpp" "src/CMakeFiles/sg_algo.dir/algo/ppr.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/ppr.cpp.o.d"
  "/root/repo/src/algo/reference.cpp" "src/CMakeFiles/sg_algo.dir/algo/reference.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/reference.cpp.o.d"
  "/root/repo/src/algo/sssp.cpp" "src/CMakeFiles/sg_algo.dir/algo/sssp.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/sssp.cpp.o.d"
  "/root/repo/src/algo/sssp_delta.cpp" "src/CMakeFiles/sg_algo.dir/algo/sssp_delta.cpp.o" "gcc" "src/CMakeFiles/sg_algo.dir/algo/sssp_delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
