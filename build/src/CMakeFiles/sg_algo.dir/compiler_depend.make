# Empty compiler generated dependencies file for sg_algo.
# This may be replaced when dependencies are built.
