file(REMOVE_RECURSE
  "libsg_algo.a"
)
