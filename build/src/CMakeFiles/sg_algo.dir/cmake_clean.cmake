file(REMOVE_RECURSE
  "CMakeFiles/sg_algo.dir/algo/bfs.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/bfs.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/cc.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/cc.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/dobfs.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/dobfs.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/kcore.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/kcore.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/pagerank.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/pagerank.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/ppr.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/ppr.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/reference.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/reference.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/sssp.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/sssp.cpp.o.d"
  "CMakeFiles/sg_algo.dir/algo/sssp_delta.cpp.o"
  "CMakeFiles/sg_algo.dir/algo/sssp_delta.cpp.o.d"
  "libsg_algo.a"
  "libsg_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
