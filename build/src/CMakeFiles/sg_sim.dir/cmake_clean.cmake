file(REMOVE_RECURSE
  "CMakeFiles/sg_sim.dir/sim/device_memory.cpp.o"
  "CMakeFiles/sg_sim.dir/sim/device_memory.cpp.o.d"
  "CMakeFiles/sg_sim.dir/sim/gpu_cost_model.cpp.o"
  "CMakeFiles/sg_sim.dir/sim/gpu_cost_model.cpp.o.d"
  "CMakeFiles/sg_sim.dir/sim/interconnect.cpp.o"
  "CMakeFiles/sg_sim.dir/sim/interconnect.cpp.o.d"
  "CMakeFiles/sg_sim.dir/sim/thread_pool.cpp.o"
  "CMakeFiles/sg_sim.dir/sim/thread_pool.cpp.o.d"
  "CMakeFiles/sg_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/sg_sim.dir/sim/topology.cpp.o.d"
  "libsg_sim.a"
  "libsg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
