
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device_memory.cpp" "src/CMakeFiles/sg_sim.dir/sim/device_memory.cpp.o" "gcc" "src/CMakeFiles/sg_sim.dir/sim/device_memory.cpp.o.d"
  "/root/repo/src/sim/gpu_cost_model.cpp" "src/CMakeFiles/sg_sim.dir/sim/gpu_cost_model.cpp.o" "gcc" "src/CMakeFiles/sg_sim.dir/sim/gpu_cost_model.cpp.o.d"
  "/root/repo/src/sim/interconnect.cpp" "src/CMakeFiles/sg_sim.dir/sim/interconnect.cpp.o" "gcc" "src/CMakeFiles/sg_sim.dir/sim/interconnect.cpp.o.d"
  "/root/repo/src/sim/thread_pool.cpp" "src/CMakeFiles/sg_sim.dir/sim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sg_sim.dir/sim/thread_pool.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/sg_sim.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/sg_sim.dir/sim/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
