file(REMOVE_RECURSE
  "libsg_sim.a"
)
