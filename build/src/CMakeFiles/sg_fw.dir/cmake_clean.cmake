file(REMOVE_RECURSE
  "CMakeFiles/sg_fw.dir/fw/benchmark.cpp.o"
  "CMakeFiles/sg_fw.dir/fw/benchmark.cpp.o.d"
  "CMakeFiles/sg_fw.dir/fw/groute.cpp.o"
  "CMakeFiles/sg_fw.dir/fw/groute.cpp.o.d"
  "CMakeFiles/sg_fw.dir/fw/gunrock.cpp.o"
  "CMakeFiles/sg_fw.dir/fw/gunrock.cpp.o.d"
  "CMakeFiles/sg_fw.dir/fw/lux.cpp.o"
  "CMakeFiles/sg_fw.dir/fw/lux.cpp.o.d"
  "libsg_fw.a"
  "libsg_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
