file(REMOVE_RECURSE
  "libsg_fw.a"
)
