# Empty dependencies file for sg_fw.
# This may be replaced when dependencies are built.
