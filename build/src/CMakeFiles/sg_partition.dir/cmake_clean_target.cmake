file(REMOVE_RECURSE
  "libsg_partition.a"
)
