file(REMOVE_RECURSE
  "CMakeFiles/sg_partition.dir/partition/cvc.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/cvc.cpp.o.d"
  "CMakeFiles/sg_partition.dir/partition/detail.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/detail.cpp.o.d"
  "CMakeFiles/sg_partition.dir/partition/dist_graph.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/dist_graph.cpp.o.d"
  "CMakeFiles/sg_partition.dir/partition/local_graph.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/local_graph.cpp.o.d"
  "CMakeFiles/sg_partition.dir/partition/partition_io.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/partition_io.cpp.o.d"
  "CMakeFiles/sg_partition.dir/partition/policy.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/policy.cpp.o.d"
  "CMakeFiles/sg_partition.dir/partition/streaming.cpp.o"
  "CMakeFiles/sg_partition.dir/partition/streaming.cpp.o.d"
  "libsg_partition.a"
  "libsg_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
