
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/cvc.cpp" "src/CMakeFiles/sg_partition.dir/partition/cvc.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/cvc.cpp.o.d"
  "/root/repo/src/partition/detail.cpp" "src/CMakeFiles/sg_partition.dir/partition/detail.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/detail.cpp.o.d"
  "/root/repo/src/partition/dist_graph.cpp" "src/CMakeFiles/sg_partition.dir/partition/dist_graph.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/dist_graph.cpp.o.d"
  "/root/repo/src/partition/local_graph.cpp" "src/CMakeFiles/sg_partition.dir/partition/local_graph.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/local_graph.cpp.o.d"
  "/root/repo/src/partition/partition_io.cpp" "src/CMakeFiles/sg_partition.dir/partition/partition_io.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/partition_io.cpp.o.d"
  "/root/repo/src/partition/policy.cpp" "src/CMakeFiles/sg_partition.dir/partition/policy.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/policy.cpp.o.d"
  "/root/repo/src/partition/streaming.cpp" "src/CMakeFiles/sg_partition.dir/partition/streaming.cpp.o" "gcc" "src/CMakeFiles/sg_partition.dir/partition/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
