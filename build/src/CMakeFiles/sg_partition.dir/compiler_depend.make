# Empty compiler generated dependencies file for sg_partition.
# This may be replaced when dependencies are built.
