// Figure 4: breakdown of execution time (max compute / min wait /
// device-host communication) and communication volume of the D-IrGL
// variants for medium graphs on 32 simulated P100 GPUs of Bridges.
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("fig4_breakdown_medium32");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Figure 4: breakdown of execution time (simulated sec) of D-IrGL\n"
      "variants for medium graphs on 32 P100 GPUs of Bridges (IEC).\n"
      "Volume is the total device<->host communication, as on the\n"
      "paper's bar labels.\n\n");

  const int gpus = 32;
  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "variant", "MaxCompute", "MinWait",
                        "DeviceComm", "Total", "Volume", "Rounds"});
    for (auto b : bench::all_benchmarks()) {
      bool first = true;
      for (auto v : {engine::Variant::kVar1, engine::Variant::kVar2,
                     engine::Variant::kVar3, engine::Variant::kVar4}) {
        const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                           partition::Policy::IEC, gpus);
        const auto r = fw::DIrGL::run(b, prep, bench::bridges(gpus),
                                      bench::params(),
                                      fw::DIrGL::config(v), bench::run_params(input));
        if (!r.ok) {
          table.add_row({first ? fw::to_string(b) : "",
                         engine::to_string(v), "-", "-", "-", "-", "-",
                         "-"});
          first = false;
          continue;
        }
        report.add(fw::to_string(b), input, "D-IrGL", engine::to_string(v),
                   gpus, r.stats);
        const auto bd = bench::breakdown_of(r.stats);
        table.add_row({first ? fw::to_string(b) : "", engine::to_string(v),
                       bench::fmt_time(bd.max_compute),
                       bench::fmt_time(bd.min_wait),
                       bench::fmt_time(bd.device_comm),
                       bench::fmt_time(bd.total),
                       bench::fmt_volume(bd.volume_gb),
                       std::to_string(bd.rounds)});
        first = false;
      }
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
