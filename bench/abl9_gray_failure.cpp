// Ablation A9: gray-failure tolerance — what partial degradation costs
// and what online mitigation buys back. The paper's experiments assume
// healthy, uniform devices; A8 covered fail-stop faults. This ablation
// quantifies the *gray* band in between on pagerank (rmat23 analogue,
// OEC — masters own their out-edges, so migrating one sheds its compute;
// pagerank's fixed iteration count gives mitigation rounds to amortize
// over):
//
//  1. Device-degrade severity sweep x mitigation policy: one device's
//     kernels slow by 2-8x for 70% of the run. `observe` pays the
//     fault in full (the BSP barrier waits for the sick device every
//     round); `migrate` re-homes a fraction of its masters onto
//     healthy peers at safe round boundaries; `evict` additionally
//     falls back to eviction when the migration budget is spent and
//     the device stays hopeless. Recovered% is (observe - mitigated) /
//     (observe - baseline) — the share of the inflation won back.
//     Results stay bit-identical to the fault-free run by construction
//     (migration moves *where* vertices compute, never *what*). The
//     sweep exposes the break-even: the one-time state-transfer cost
//     of migration is fixed, so mitigation only wins once the degraded
//     time it sheds exceeds it (severity >= ~6x at this scale).
//  2. Memory-pressure sweep: an external squatter claims a fraction of
//     one device's memory; the deficit spills over PCIe every round.
//     Shown with the topology's memory tightened so the working set
//     actually collides with the squatter (SpillMB > 0), comparing
//     observe vs migrate. Shedding masters shrinks the working set,
//     which collapses the spill volume — whether that wins on makespan
//     is again the break-even between stall saved and transfer paid.
//  3. Link-degrade sweep: bandwidth cut + latency derate on one host's
//     hops. No compute signal reaches the monitor, and master
//     migration cannot reroute a physical link, so this sweep is
//     observe-only. Mild derates hide entirely under compute overlap;
//     the sweep walks the derate up to expose the crossover where the
//     link becomes the round bottleneck.
//
// All runs with the same plan are bit-deterministic, so every number
// here is reproducible. `--smoke` runs a reduced fixed sweep at 16 GPUs
// and writes a run-report for report_diff regression guarding against
// bench/baselines/.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "fault/fault.hpp"

namespace {

using namespace sg;

const char* mode_name(fault::MitigationMode m) {
  switch (m) {
    case fault::MitigationMode::kObserve:
      return "observe";
    case fault::MitigationMode::kMigrate:
      return "migrate";
    case fault::MitigationMode::kEvict:
      return "evict";
  }
  return "?";
}

/// Monitor tuning scaled to the run, the same way sg_chaos --gray (and
/// an operator sizing the detector to a workload) derives it: heartbeat
/// cadence from the fault-free makespan, two-evaluation confirmation,
/// fast-converging stretch estimate.
engine::EngineConfig gray_tuned(const engine::EngineConfig& base,
                                sim::SimTime oracle,
                                fault::MitigationMode mode) {
  auto cfg = base;
  cfg.mitigation.mode = mode;
  cfg.mitigation.sustain_rounds = 2;
  cfg.mitigation.stretch_alpha = 0.4;
  cfg.health.heartbeat_interval = oracle * (1.0 / 50.0);
  return cfg;
}

std::string fmt_pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", x * 100.0);
  return buf;
}

struct Sweeps {
  std::vector<double> severities;
  std::vector<double> fractions;
  std::vector<double> link_slowdowns;
};

int run_sweeps(bench::ReportLog& report, const std::string& input, int gpus,
               const Sweeps& sw, double pressure_mem_scale) {
  const auto& prep =
      bench::prepared(input, false, partition::Policy::OEC, gpus);
  const auto topo = bench::bridges(gpus);
  const auto params = bench::params();
  const auto bsp = fw::DIrGL::config(engine::Variant::kVar3);

  const auto base =
      fw::DIrGL::run(fw::Benchmark::kPagerank, prep, topo, params, bsp);
  if (!base.ok) {
    std::printf("baseline run failed; aborting\n");
    return 1;
  }
  report.add("pagerank", input, "D-IrGL", "Var3", gpus, base.stats);
  const double t0 = base.stats.total_time.seconds();
  const auto oracle = base.stats.total_time;
  const int victim = gpus / 2;

  std::printf("== device-degrade severity x mitigation policy ==\n");
  {
    bench::Table table({"Severity", "Policy", "Total", "Overhead", "Alerts",
                        "Migr", "Evict", "Masters", "Recovered"});
    table.add_row({"none", "-", bench::fmt_time(t0), "-", "0", "0", "0",
                   "0", "-"});
    for (const double severity : sw.severities) {
      fault::FaultPlan plan;
      plan.seed = 1;
      plan.degrade_device(victim, oracle * 0.15, oracle * 0.7, severity);
      double t_observe = 0.0;
      for (const auto mode : {fault::MitigationMode::kObserve,
                              fault::MitigationMode::kMigrate,
                              fault::MitigationMode::kEvict}) {
        auto cfg = gray_tuned(bsp, oracle, mode);
        cfg.fault_plan = &plan;
        const auto r =
            fw::DIrGL::run(fw::Benchmark::kPagerank, prep, topo, params, cfg);
        if (!r.ok) continue;
        char sev[16];
        std::snprintf(sev, sizeof sev, "%.0fx", severity);
        report.add("pagerank", input, "D-IrGL",
                   std::string("Var3+degrade") + sev + "+" +
                       mode_name(mode),
                   gpus, r.stats);
        const auto& f = r.stats.faults;
        const double t = r.stats.total_time.seconds();
        if (mode == fault::MitigationMode::kObserve) t_observe = t;
        std::string recovered = "-";
        if (mode != fault::MitigationMode::kObserve &&
            t_observe > t0 * (1.0 + 1e-9)) {
          recovered = fmt_pct((t_observe - t) / (t_observe - t0));
        }
        table.add_row({sev, mode_name(mode), bench::fmt_time(t),
                       fmt_pct(t / t0 - 1.0),
                       std::to_string(f.gray_alerts),
                       std::to_string(f.gray_migrations),
                       std::to_string(f.gray_evictions),
                       std::to_string(f.gray_migrated_masters), recovered});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "== memory-pressure fraction x policy (memory tightened %gx) ==\n",
      pressure_mem_scale / 400.0);
  {
    const auto tight = bench::bridges(gpus, pressure_mem_scale);
    const auto tbase =
        fw::DIrGL::run(fw::Benchmark::kPagerank, prep, tight, params, bsp);
    if (!tbase.ok) {
      std::printf("tight-memory baseline failed (OOM?); skipping sweep\n");
    } else {
      const double tt0 = tbase.stats.total_time.seconds();
      bench::Table table({"Fraction", "Policy", "Total", "Overhead",
                          "SpillMB", "StallT", "Migr"});
      table.add_row({"none", "-", bench::fmt_time(tt0), "-", "0", "0",
                     "0"});
      for (const double fraction : sw.fractions) {
        fault::FaultPlan plan;
        plan.seed = 1;
        plan.pressure_memory(victim, tbase.stats.total_time * 0.1,
                             tbase.stats.total_time * 0.8, fraction);
        for (const auto mode : {fault::MitigationMode::kObserve,
                                fault::MitigationMode::kMigrate}) {
          auto cfg = gray_tuned(bsp, tbase.stats.total_time, mode);
          cfg.fault_plan = &plan;
          const auto r =
              fw::DIrGL::run(fw::Benchmark::kPagerank, prep, tight, params, cfg);
          if (!r.ok) continue;
          char fr[16];
          std::snprintf(fr, sizeof fr, "%.2f", fraction);
          report.add("pagerank", input, "D-IrGL",
                     std::string("Var3+mempress") + fr + "+" +
                         mode_name(mode),
                     gpus, r.stats);
          const auto& f = r.stats.faults;
          table.add_row({fr, mode_name(mode),
                         bench::fmt_time(r.stats.total_time.seconds()),
                         fmt_pct(r.stats.total_time.seconds() / tt0 - 1.0),
                         bench::fmt_bytes_mb(f.spill_bytes),
                         bench::fmt_time(f.spill_stall.seconds()),
                         std::to_string(f.gray_migrations)});
        }
      }
      table.print();
    }
    std::printf("\n");
  }

  std::printf("== link-degrade slowdown sweep (observe-only bound) ==\n");
  {
    bench::Table table({"Slowdown", "Total", "Overhead"});
    table.add_row({"none", bench::fmt_time(t0), "-"});
    for (const double slowdown : sw.link_slowdowns) {
      fault::FaultPlan plan;
      plan.seed = 1;
      plan.degrade_link(0, -1, oracle * 0.15, oracle * 0.7, slowdown,
                        /*latency_factor=*/2.0);
      auto cfg = gray_tuned(bsp, oracle, fault::MitigationMode::kObserve);
      cfg.fault_plan = &plan;
      const auto r =
          fw::DIrGL::run(fw::Benchmark::kPagerank, prep, topo, params, cfg);
      if (!r.ok) continue;
      char sv[16];
      std::snprintf(sv, sizeof sv, "%.0fx", slowdown);
      report.add("pagerank", input, "D-IrGL", std::string("Var3+link") + sv,
                 gpus, r.stats);
      table.add_row({sv, bench::fmt_time(r.stats.total_time.seconds()),
                     fmt_pct(r.stats.total_time.seconds() / t0 - 1.0)});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Ablation A9: gray-failure tolerance, pagerank on rmat23, OEC.\n"
      "Degradation faults vs the SLO guardian's mitigation policies;\n"
      "Total is simulated seconds, Recovered is the share of the\n"
      "observe-mode inflation won back by mitigation.\n\n");

  if (smoke) {
    // Reduced fixed sweep for CI: one severity, one pressure fraction,
    // one link derate at 16 GPUs. Writes BENCH_abl9_gray_smoke.json (into
    // $SG_BENCH_REPORT_DIR when set), diffed against
    // bench/baselines/abl9_gray_smoke_baseline.json by report_diff.
    bench::ReportLog report("abl9_gray_smoke");
    const int rc =
        run_sweeps(report, "rmat23", 16, {{8.0}, {0.95}, {32.0}}, 20000.0);
    if (rc != 0) return rc;
    if (!report.write()) return 1;
    std::printf("smoke: %zu run(s)\n", report.num_runs());
    return 0;
  }

  bench::ReportLog report("abl9_gray_failure");
  const int rc = run_sweeps(report, "rmat23", 16,
                            {{2.0, 4.0, 6.0, 8.0},
                             {0.6, 0.8, 0.95},
                             {8.0, 32.0, 128.0}},
                            20000.0);
  if (rc != 0) return rc;
  report.write();
  return 0;
}
