// Ablation A11: multi-tenant query serving — what lane batching buys
// and what tenant skew does to it. The paper's experiments are offline
// analytics (one algorithm, whole-graph answers); the serving layer
// (src/serve/) turns the same resident shards into a point-query
// backend by coalescing compatible queries into fused multi-source
// engine runs. This ablation sweeps the two knobs that govern the
// economics:
//
//  * batch width {1, 8, 64}: msbfs/mssssp lanes per fused run. Width 1
//    is the unbatched strawman — one engine run per uncached source —
//    so the Sweeps column directly exposes the >= 8x reduction the
//    serving layer is built for (CI asserts it end-to-end via
//    `sg_serve --verify`; here it shows up as the width-1 / width-64
//    sweep ratio at fixed skew).
//  * tenant skew {0.0, 1.2}: Zipf exponent over tenants. Skew changes
//    *who* overflows admission (the heavy tenant's token bucket drains
//    while small tenants ride free) but not *what* gets batched —
//    lanes coalesce across tenants, so the sweep count is driven by
//    distinct uncached sources, not by tenant mix. The per-tenant
//    admitted/rejected split in the report is where skew shows.
//
// Per cell the report row aggregates every fused engine run: total
// time is the serving makespan (the simulated clock when the last
// answer left), global_rounds is the summed sweep count, comm volume
// and per-device work are summed across runs, and the scheduler's SLO
// metrics registry (admission/latency/deadline counters) is snapshotted
// into the run report. Everything is seeded, so reports are
// byte-deterministic.
//
// `--smoke` runs a reduced fixed sweep (widths {1, 64}, skew 1.2) and
// writes BENCH_abl11_serving_smoke.json for report_diff regression
// guarding against bench/baselines/abl11_serving_smoke_baseline.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace {

using namespace sg;

/// Same social-style graph sg_serve replays against: symmetric
/// communities so every landmark reaches most of the graph, randomized
/// weights for the sssp family.
const graph::Csr& serve_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 2048;
    s.edges = 12000;
    s.zipf_out = 0.6;
    s.zipf_in = 0.6;
    s.communities = 4;
    s.symmetric = true;
    s.seed = 11;
    return graph::add_symmetric_weights(graph::synthetic(s), 1, 64, 11);
  }();
  return g;
}

/// Folds the scheduler's per-run engine stats plus the serving
/// makespan into one RunStats row (sums where summing is meaningful,
/// max for peak memory).
engine::RunStats aggregate(const serve::BatchScheduler& sched, int devices) {
  engine::RunStats agg;
  agg.total_time = sched.report().makespan;
  agg.global_rounds =
      static_cast<std::uint32_t>(sched.report().engine_sweeps);
  agg.compute_time.resize(devices);
  agg.device_comm_time.resize(devices);
  agg.wait_time.resize(devices);
  agg.work_items.assign(devices, 0);
  agg.rounds.assign(devices, 0);
  agg.peak_memory.assign(devices, 0);
  for (const engine::RunStats& s : sched.engine_stats()) {
    agg.comm += s.comm;
    for (int d = 0; d < devices; ++d) {
      const auto i = static_cast<std::size_t>(d);
      if (i < s.compute_time.size()) agg.compute_time[i] += s.compute_time[i];
      if (i < s.device_comm_time.size()) {
        agg.device_comm_time[i] += s.device_comm_time[i];
      }
      if (i < s.wait_time.size()) agg.wait_time[i] += s.wait_time[i];
      if (i < s.work_items.size()) agg.work_items[i] += s.work_items[i];
      if (i < s.rounds.size()) agg.rounds[i] += s.rounds[i];
      if (i < s.peak_memory.size()) {
        agg.peak_memory[i] = std::max(agg.peak_memory[i], s.peak_memory[i]);
      }
    }
  }
  return agg;
}

std::string fmt_pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", x * 100.0);
  return buf;
}

struct Cell {
  std::uint64_t sweeps = 0;
  bool ok = false;
};

/// One (batch width, tenant skew) cell: replay the seeded workload
/// through a fresh scheduler and report the aggregate.
Cell run_cell(bench::ReportLog& report, const fw::Prepared& prep,
              const sim::Topology& topo, const sim::CostParams& params,
              const engine::EngineConfig& engine_cfg, std::uint32_t queries,
              std::uint32_t width, double skew, int devices,
              bench::Table& table) {
  serve::WorkloadSpec spec;
  spec.num_queries = queries;
  spec.tenant_skew = skew;
  const std::vector<serve::Query> trace =
      serve::generate_workload(spec, serve_graph().num_vertices());

  serve::ServeConfig cfg;
  cfg.batch_width = width;
  cfg.ppr_batch_width = std::min<std::uint32_t>(16, width);
  // Same admission shape as sg_serve's default: generous blanket limits
  // with the Zipf-heavy tenant 0 clamped below its offered rate, so the
  // skewed cells show deterministic token-bucket rejections.
  cfg.default_limits = {.rate_qps = 40000.0, .burst = 128.0,
                        .max_queued = 256};
  cfg.tenant_limits = {{.rate_qps = 32000.0, .burst = 80.0,
                        .max_queued = 256}};
  obs::Registry metrics;
  cfg.metrics = &metrics;

  serve::BatchScheduler sched(prep.dist, prep.sync, topo, params, engine_cfg,
                              cfg);
  (void)sched.run(trace);

  const serve::ServeReport& rep = sched.report();
  const serve::ResultCache::Stats& cs = sched.cache_stats();
  const engine::RunStats agg = aggregate(sched, devices);

  char cfg_name[48];
  std::snprintf(cfg_name, sizeof cfg_name, "bw%u+skew%.1f", width, skew);
  report.add("serving", "social2048", "sg-serve", cfg_name, devices, agg,
             &metrics);

  char w[16], sk[16];
  std::snprintf(w, sizeof w, "%u", width);
  std::snprintf(sk, sizeof sk, "%.1f", skew);
  const std::uint64_t lookups = cs.hits + cs.misses;
  table.add_row(
      {w, sk, std::to_string(rep.served), std::to_string(rep.rejected),
       lookups != 0 ? fmt_pct(static_cast<double>(cs.hits) /
                              static_cast<double>(lookups))
                    : "-",
       std::to_string(rep.engine_runs), std::to_string(rep.engine_sweeps),
       bench::fmt_time(rep.makespan.seconds()),
       fmt_pct(rep.deadline_hit_ratio)});
  return {rep.engine_sweeps, true};
}

int run_sweep(bench::ReportLog& report, std::uint32_t queries,
              const std::vector<std::uint32_t>& widths,
              const std::vector<double>& skews, int devices) {
  const graph::Csr& g = serve_graph();
  const fw::Prepared prep = fw::prepare(g, partition::Policy::CVC, devices);
  const sim::Topology topo = bench::bridges(devices);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  const engine::EngineConfig engine_cfg =
      engine::make_variant(engine::Variant::kVar3);

  std::printf("== batch width x tenant skew (%u queries, %d GPUs, CVC) ==\n",
              queries, devices);
  bench::Table table({"Width", "Skew", "Served", "Rejected", "Cache",
                      "Runs", "Sweeps", "Makespan", "DeadlineHit"});
  for (const double skew : skews) {
    std::uint64_t sweeps_w1 = 0;
    for (const std::uint32_t width : widths) {
      const Cell c = run_cell(report, prep, topo, params, engine_cfg,
                              queries, width, skew, devices, table);
      if (!c.ok) return 1;
      if (width == 1) sweeps_w1 = c.sweeps;
      if (width > 1 && sweeps_w1 != 0 && c.sweeps != 0) {
        std::printf("  skew %.1f: width %u uses %.2fx fewer sweeps than "
                    "width 1\n",
                    skew, width,
                    static_cast<double>(sweeps_w1) /
                        static_cast<double>(c.sweeps));
      }
    }
  }
  table.print();
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Ablation A11: multi-tenant serving, point queries on the resident\n"
      "social graph. Sweeps msbfs/mssssp batch width x tenant Zipf skew;\n"
      "Sweeps is the summed engine round count the batching compresses,\n"
      "Makespan is the simulated clock when the last answer left.\n\n");

  if (smoke) {
    // Reduced fixed sweep for CI: widths {1, 64} at the default skew.
    // Writes BENCH_abl11_serving_smoke.json (into $SG_BENCH_REPORT_DIR
    // when set), diffed against
    // bench/baselines/abl11_serving_smoke_baseline.json by report_diff.
    bench::ReportLog report("abl11_serving_smoke");
    const int rc = run_sweep(report, 600, {1, 64}, {1.2}, 4);
    if (rc != 0) return rc;
    if (!report.write()) return 1;
    std::printf("smoke: %zu run(s)\n", report.num_runs());
    return 0;
  }

  bench::ReportLog report("abl11_serving");
  const int rc = run_sweep(report, 1200, {1, 8, 64}, {0.0, 1.2}, 4);
  if (rc != 0) return rc;
  report.write();
  return 0;
}
