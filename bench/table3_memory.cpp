// Table III: maximum memory usage across 6 GPUs of all frameworks for
// cc on the single-host system. Lux's static up-front pool shows as a
// flat figure regardless of input; D-IrGL's compact partitions use the
// least memory (the reason it alone handles the medium graphs on
// Tuxedo).
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("table3_memory");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Table III: maximum memory usage (MB, simulated; capacities are\n"
      "dataset-scaled) across 6 GPUs of all frameworks for cc on the\n"
      "single-host multi-GPU system, Tuxedo. Lux uses a static memory\n"
      "allocation.\n\n");

  const int gpus = 6;
  const auto topo = bench::tuxedo(gpus);
  const auto params = bench::params();
  const std::vector<std::string> inputs = {"rmat23", "orkut", "indochina04"};

  bench::Table table({"system", "rmat23", "orkut", "indochina04"});

  auto row = [&](const std::string& name, auto&& runner) {
    std::vector<std::string> cells{name};
    for (const auto& input : inputs) {
      const auto r = runner(input);
      if (r.ok) report.add("cc", input, name, "default", gpus, r.stats);
      cells.push_back(r.ok ? bench::fmt_bytes_mb(r.stats.max_memory())
                           : "OOM");
    }
    table.add_row(std::move(cells));
  };

  row("Gunrock", [&](const std::string& input) {
    return fw::Gunrock::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::RANDOM, gpus),
        topo, params);
  });
  row("Groute", [&](const std::string& input) {
    return fw::Groute::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::GREEDY, gpus),
        topo, params);
  });
  row("Lux", [&](const std::string& input) {
    return fw::Lux::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::IEC, gpus), topo,
        params);
  });
  row("D-IrGL", [&](const std::string& input) {
    return fw::DIrGL::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::OEC, gpus), topo,
        params, fw::DIrGL::default_config());
  });

  table.print();

  std::printf(
      "\nMedium graphs on Tuxedo (the paper: only D-IrGL could run them):\n");
  bench::Table table2({"system", "friendster", "twitter50", "uk07"});
  // Tight capacities: the real Tuxedo GPUs are 8-12 GB; medium analogues
  // are ~2000x reduced, so scale capacities by 2000 to model the same
  // pressure the paper saw with 16-29 GB inputs on 8-12 GB cards.
  const auto tight = bench::tuxedo(gpus, 2250.0);
  auto row2 = [&](const std::string& name, auto&& runner) {
    std::vector<std::string> cells{name};
    for (const std::string input : {"friendster", "twitter50", "uk07"}) {
      const auto r = runner(input);
      if (r.ok) report.add("cc", input, name, "tight", gpus, r.stats);
      cells.push_back(r.ok ? bench::fmt_bytes_mb(r.stats.max_memory())
                           : std::string("OOM"));
    }
    table2.add_row(std::move(cells));
  };
  row2("Gunrock", [&](const std::string& input) {
    return fw::Gunrock::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::RANDOM, gpus),
        tight, params);
  });
  row2("Groute", [&](const std::string& input) {
    return fw::Groute::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::GREEDY, gpus),
        tight, params);
  });
  row2("Lux", [&](const std::string& input) {
    return fw::Lux::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::IEC, gpus), tight,
        params);
  });
  row2("D-IrGL", [&](const std::string& input) {
    return fw::DIrGL::run(
        fw::Benchmark::kCc,
        bench::prepared(input, false, partition::Policy::OEC, gpus), tight,
        params, fw::DIrGL::default_config());
  });
  table2.print();
  report.write();
  return 0;
}
