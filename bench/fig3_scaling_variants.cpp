// Figure 3: strong scaling of D-IrGL variants (Var1-Var4, IEC) and Lux
// for the medium graphs on Bridges (2 simulated P100s per host), 2-64
// GPUs. Prints one series per (input, benchmark, system) with the
// simulated execution time at each GPU count ("-" = failed/unsupported).
//
// Observability mode: `--trace out.json`, `--report run.json`, and/or
// `--explain` skip the full sweep and run one fixed configuration
// (bfs/friendster/Var4/4 GPUs) with the span tracer and metrics
// registry attached, write the requested artifacts, and self-check that
// per-device span sums reconcile with the RunStats breakdown within 1
// simulated µs. --explain appends the sg_explain critical-path
// attribution of the traced run to stdout.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace sg;

const std::vector<int> kGpus = {2, 4, 8, 16, 32, 64};

bench::ReportLog report("fig3_scaling_variants");

/// One fully observed run: tracer + registry + per-round trace on.
/// Returns 0 when artifacts were written and the trace reconciles.
int traced_run(const std::string& trace_path,
               const std::string& report_path, bool explain) {
  constexpr int kTracedGpus = 4;
  const std::string input = "friendster";
  obs::Tracer tracer;
  obs::Registry registry;
  engine::EngineConfig cfg = fw::DIrGL::config(engine::Variant::kVar4);
  cfg.collect_trace = true;
  cfg.tracer = &tracer;
  cfg.metrics = &registry;

  const auto& prep = bench::prepared(input, false, partition::Policy::IEC,
                                     kTracedGpus);
  const auto r =
      fw::DIrGL::run(fw::Benchmark::kBfs, prep, bench::bridges(kTracedGpus),
                     bench::params(), cfg, bench::run_params(input));
  if (!r.ok) {
    std::fprintf(stderr, "traced run failed: %s\n", r.error.c_str());
    return 1;
  }

  // Reconciliation: each per-device RunStats accumulator must equal the
  // sum of its span kind on that device's track (SpanKind contract).
  double worst_us = 0.0;
  for (int d = 0; d < kTracedGpus; ++d) {
    const double dc = std::abs(
        r.stats.compute_time[d].micros() -
        tracer.kind_sum(d, obs::SpanKind::kKernel).micros());
    const double dw =
        std::abs(r.stats.wait_time[d].micros() -
                 tracer.kind_sum(d, obs::SpanKind::kWait).micros());
    const double dm = std::abs(r.stats.device_comm_time[d].micros() -
                               tracer.comm_sum(d).micros());
    worst_us = std::max({worst_us, dc, dw, dm});
    std::printf(
        "gpu%d: compute %.3fs (span delta %.4fus)  wait %.3fs "
        "(%.4fus)  device-comm %.3fs (%.4fus)\n",
        d, r.stats.compute_time[d].seconds(), dc,
        r.stats.wait_time[d].seconds(), dw,
        r.stats.device_comm_time[d].seconds(), dm);
  }
  std::printf("trace: %llu spans recorded, %llu dropped, worst "
              "reconciliation delta %.4f simulated us\n",
              static_cast<unsigned long long>(tracer.recorded()),
              static_cast<unsigned long long>(tracer.dropped()),
              worst_us);

  bool ok = worst_us <= 1.0 && tracer.dropped() == 0;
  if (!ok) std::fprintf(stderr, "trace does NOT reconcile with stats\n");
  if (!trace_path.empty()) {
    if (tracer.write_chrome_trace(trace_path)) {
      std::printf("[trace] wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "[trace] FAILED to write %s\n",
                   trace_path.c_str());
      ok = false;
    }
  }
  if (!report_path.empty()) {
    obs::ReportMeta meta;
    meta.bench = "fig3_scaling_variants";
    meta.benchmark = "bfs";
    meta.input = input;
    meta.system = "D-IrGL";
    meta.config = "Var4+trace";
    meta.devices = kTracedGpus;
    meta.label = "bfs/" + input + "/D-IrGL/Var4+trace/" +
                 std::to_string(kTracedGpus);
    if (obs::write_report(report_path, meta, r.stats, &registry, &tracer)) {
      std::printf("[report] wrote %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "[report] FAILED to write %s\n",
                   report_path.c_str());
      ok = false;
    }
  }
  if (explain) {
    std::printf("\n");
    bench::explain_run(prep, bench::bridges(kTracedGpus), bench::params(),
                       r.stats, tracer,
                       "bfs/" + input + "/D-IrGL/Var4/" +
                           std::to_string(kTracedGpus));
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sg;
  std::string trace_path;
  std::string report_path;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (a == "--explain") {
      explain = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace out.json] [--report run.json] "
                   "[--explain]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty() || !report_path.empty() || explain) {
    return traced_run(trace_path, report_path, explain);
  }

  std::printf(
      "Figure 3: strong scaling (simulated sec) of D-IrGL variants and\n"
      "Lux for medium graphs on Bridges. Var1=TWC+AS+Sync, Var2=ALB+AS+\n"
      "Sync, Var3=ALB+UO+Sync, Var4=ALB+UO+Async; all with IEC, as in\n"
      "the paper's Section V-B.\n\n");

  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "system", "2", "4", "8", "16", "32",
                        "64"});
    for (auto b : bench::all_benchmarks()) {
      std::map<int, std::uint32_t> pr_rounds;
      for (auto v : {engine::Variant::kVar1, engine::Variant::kVar2,
                     engine::Variant::kVar3, engine::Variant::kVar4}) {
        std::vector<std::string> row{fw::to_string(b),
                                     engine::to_string(v)};
        for (int gpus : kGpus) {
          const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                             partition::Policy::IEC, gpus);
          const auto r = fw::DIrGL::run(b, prep, bench::bridges(gpus),
                                        bench::params(),
                                        fw::DIrGL::config(v), bench::run_params(input));
          if (r.ok) {
            if (b == fw::Benchmark::kPagerank &&
                v == engine::Variant::kVar4) {
              pr_rounds[gpus] = r.stats.global_rounds;
            }
            report.add(fw::to_string(b), input, "D-IrGL",
                       engine::to_string(v), gpus, r.stats);
            row.push_back(bench::fmt_time(r.stats.total_time.seconds()));
          } else {
            row.push_back("-");
          }
        }
        table.add_row(std::move(row));
      }
      if (b == fw::Benchmark::kCc || b == fw::Benchmark::kPagerank) {
        std::vector<std::string> row{fw::to_string(b), "Lux"};
        for (int gpus : kGpus) {
          const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                             partition::Policy::IEC, gpus);
          fw::RunParams rp;
          rp.lux_pr_rounds =
              pr_rounds.count(gpus) ? pr_rounds[gpus] : 50;
          const auto r = fw::Lux::run(b, prep, bench::bridges(gpus),
                                      bench::params(), rp);
          if (r.ok) {
            report.add(fw::to_string(b), input, "Lux", "default", gpus,
                       r.stats);
          }
          row.push_back(r.ok ? bench::fmt_time(r.stats.total_time.seconds())
                             : "-");
        }
        table.add_row(std::move(row));
      }
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
