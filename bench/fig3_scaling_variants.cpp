// Figure 3: strong scaling of D-IrGL variants (Var1-Var4, IEC) and Lux
// for the medium graphs on Bridges (2 simulated P100s per host), 2-64
// GPUs. Prints one series per (input, benchmark, system) with the
// simulated execution time at each GPU count ("-" = failed/unsupported).
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace sg;

const std::vector<int> kGpus = {2, 4, 8, 16, 32, 64};

}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Figure 3: strong scaling (simulated sec) of D-IrGL variants and\n"
      "Lux for medium graphs on Bridges. Var1=TWC+AS+Sync, Var2=ALB+AS+\n"
      "Sync, Var3=ALB+UO+Sync, Var4=ALB+UO+Async; all with IEC, as in\n"
      "the paper's Section V-B.\n\n");

  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "system", "2", "4", "8", "16", "32",
                        "64"});
    for (auto b : bench::all_benchmarks()) {
      std::map<int, std::uint32_t> pr_rounds;
      for (auto v : {engine::Variant::kVar1, engine::Variant::kVar2,
                     engine::Variant::kVar3, engine::Variant::kVar4}) {
        std::vector<std::string> row{fw::to_string(b),
                                     engine::to_string(v)};
        for (int gpus : kGpus) {
          const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                             partition::Policy::IEC, gpus);
          const auto r = fw::DIrGL::run(b, prep, bench::bridges(gpus),
                                        bench::params(),
                                        fw::DIrGL::config(v), bench::run_params(input));
          if (r.ok) {
            if (b == fw::Benchmark::kPagerank &&
                v == engine::Variant::kVar4) {
              pr_rounds[gpus] = r.stats.global_rounds;
            }
            row.push_back(bench::fmt_time(r.stats.total_time.seconds()));
          } else {
            row.push_back("-");
          }
        }
        table.add_row(std::move(row));
      }
      if (b == fw::Benchmark::kCc || b == fw::Benchmark::kPagerank) {
        std::vector<std::string> row{fw::to_string(b), "Lux"};
        for (int gpus : kGpus) {
          const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                             partition::Policy::IEC, gpus);
          fw::RunParams rp;
          rp.lux_pr_rounds =
              pr_rounds.count(gpus) ? pr_rounds[gpus] : 50;
          const auto r = fw::Lux::run(b, prep, bench::bridges(gpus),
                                      bench::params(), rp);
          row.push_back(r.ok ? bench::fmt_time(r.stats.total_time.seconds())
                             : "-");
        }
        table.add_row(std::move(row));
      }
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
