#pragma once

// Shared utilities for the paper-reproduction benchmark binaries: table
// formatting, cached dataset construction, and facade run helpers. Each
// binary regenerates one table or figure from the paper; absolute times
// are simulated seconds, so the *shape* (who wins, crossovers, ratios)
// is the comparison target, not the paper's absolute numbers.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <system_error>
#include <vector>

#include "fw/benchmark.hpp"
#include "obs/critpath.hpp"
#include "obs/report.hpp"
#include "fw/dirgl.hpp"
#include "fw/groute.hpp"
#include "fw/gunrock.hpp"
#include "fw/lux.hpp"
#include "graph/datasets.hpp"
#include "graph/properties.hpp"
#include "sim/cost_params.hpp"
#include "sim/interconnect.hpp"
#include "sim/topology.hpp"

namespace sg::bench {

/// Dataset cache: analogues are deterministic, so build each once per
/// process (several benches sweep the same input many times).
inline const graph::Csr& dataset(const std::string& name,
                                 bool weighted = false) {
  static std::map<std::string, graph::Csr> cache;
  const std::string key = name + (weighted ? "#w" : "");
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, weighted ? graph::datasets::make_weighted(name)
                                    : graph::datasets::make(name))
             .first;
  }
  return it->second;
}

/// Prepared-partition cache keyed by (dataset, weighted, policy, devices).
inline const fw::Prepared& prepared(const std::string& name, bool weighted,
                                    partition::Policy policy, int devices) {
  static std::map<std::string, fw::Prepared> cache;
  const std::string key = name + (weighted ? "#w" : "") + "/" +
                          partition::to_string(policy) + "/" +
                          std::to_string(devices);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, fw::prepare(dataset(name, weighted), policy,
                                        devices))
             .first;
  }
  return it->second;
}

inline sim::CostParams params() {
  return sim::CostParams::for_scaled_datasets();
}

/// Default memory scale: capacities are generous so only the dedicated
/// memory benches hit OOM.
inline sim::Topology bridges(int devices, double mem_scale = 400.0) {
  return sim::Topology::bridges(devices, mem_scale);
}
inline sim::Topology tuxedo(int devices, double mem_scale = 400.0) {
  return sim::Topology::tuxedo(devices, mem_scale);
}

/// sssp needs weights; everything else runs unweighted (faster, and the
/// paper adds weights for sssp-style use).
inline bool needs_weights(fw::Benchmark b) {
  return b == fw::Benchmark::kSssp;
}

/// Per-input algorithm parameters. kcore's k is the input's average
/// out-degree so the peeling cascade is non-trivial on every analogue
/// (a fixed k would be above some inputs' minimum degree and below
/// others' maximum).
inline fw::RunParams run_params(const std::string& input) {
  fw::RunParams rp;
  const auto& g = dataset(input);
  rp.kcore_k = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(g.num_edges() / g.num_vertices()));
  return rp;
}

inline std::vector<fw::Benchmark> all_benchmarks() {
  return {fw::Benchmark::kBfs, fw::Benchmark::kCc, fw::Benchmark::kKcore,
          fw::Benchmark::kPagerank, fw::Benchmark::kSssp};
}

/// Formats simulated seconds compactly ("1.23", "0.0045").
inline std::string fmt_time(double seconds) {
  char buf[32];
  if (seconds >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", seconds);
  } else if (seconds >= 1) {
    std::snprintf(buf, sizeof buf, "%.2f", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.4f", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", seconds);
  }
  return buf;
}

inline std::string fmt_bytes_mb(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One execution-time breakdown row (Figures 4-6, 8, 9).
struct Breakdown {
  double max_compute = 0;
  double min_wait = 0;
  double device_comm = 0;
  double total = 0;
  double volume_gb = 0;
  std::uint32_t rounds = 0;
};

inline Breakdown breakdown_of(const engine::RunStats& st) {
  Breakdown b;
  b.max_compute = st.max_compute().seconds();
  b.min_wait = st.min_wait().seconds();
  b.device_comm = st.max_device_comm().seconds();
  b.total = st.total_time.seconds();
  b.volume_gb =
      static_cast<double>(st.comm.total_volume()) / (1024.0 * 1024.0 * 1024.0);
  b.rounds = st.global_rounds;
  return b;
}

inline std::string fmt_volume(double gb) {
  char buf[32];
  if (gb >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.1fGB", gb);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fMB", gb * 1024.0);
  }
  return buf;
}

/// Critical-path attribution for a traced run (`--explain`): builds the
/// ExplainContext from the run's own partition / topology / cost model
/// so sg_explain's hints can reason about replication factor and the
/// latency-vs-bandwidth split, then prints the text report to stdout.
inline void explain_run(const fw::Prepared& prep, const sim::Topology& topo,
                        const sim::CostParams& cost,
                        const engine::RunStats& stats,
                        const obs::Tracer& tracer,
                        const std::string& config) {
  obs::ExplainContext ctx;
  ctx.stats = &stats;
  ctx.num_hosts = topo.num_hosts();
  ctx.replication_factor = prep.sync.replication_factor(prep.dist);
  ctx.config = config;
  const sim::Interconnect ic(topo, cost);
  for (int d = 1; d < topo.num_devices(); ++d) {
    if (!topo.same_host(0, d)) {
      ctx.net_fixed_cost_s = ic.host_to_host_fixed(0, d).seconds();
      break;
    }
  }
  const obs::TraceView view = obs::TraceView::from_tracer(tracer);
  const obs::CpAnalysis analysis = obs::analyze_critical_path(view, &ctx);
  obs::render_explain_text(std::cout, view, analysis, obs::ExplainOptions{},
                           &ctx);
}

/// Machine-readable twin of each bench's text table: every successful
/// framework run is appended as a run-report entry, and `write()` emits
/// BENCH_<name>.json into the working directory (or $SG_BENCH_REPORT_DIR
/// when set) for report_diff / CI regression guarding.
class ReportLog {
 public:
  explicit ReportLog(std::string bench_name)
      : bench_(bench_name),
        writer_(std::move(bench_name)),
        mark_(std::chrono::steady_clock::now()) {}

  /// Labels the run `<benchmark>/<input>/<system>/<config>/<devices>` —
  /// deterministic, so diffs across report generations line up. Each
  /// add() also stamps the run with the host wall time elapsed since
  /// the previous add() (or construction) — the real time this machine
  /// spent producing the run — so every BENCH_*.json row carries a
  /// `host_time.host_wall_ms` for the host-time regression CI leg.
  void add(const std::string& benchmark, const std::string& input,
           const std::string& system, const std::string& config,
           int devices, const engine::RunStats& stats,
           const obs::Registry* metrics = nullptr,
           const obs::Tracer* trace = nullptr) {
    obs::ReportMeta meta;
    meta.bench = bench_;
    meta.benchmark = benchmark;
    meta.input = input;
    meta.system = system;
    meta.config = config;
    meta.devices = devices;
    meta.label = benchmark + "/" + input + "/" + system + "/" + config +
                 "/" + std::to_string(devices);
    const auto now = std::chrono::steady_clock::now();
    obs::HostTime host;
    host.host_wall_ms =
        std::chrono::duration<double, std::milli>(now - mark_).count();
    mark_ = now;
    writer_.add(meta, stats, metrics, trace, &host);
  }

  [[nodiscard]] std::size_t num_runs() const { return writer_.num_runs(); }

  /// Writes the accumulated report; prints the path so the artifact is
  /// discoverable from the bench's text output.
  bool write() const {
    std::filesystem::path dir = ".";
    if (const char* env = std::getenv("SG_BENCH_REPORT_DIR")) dir = env;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // fresh CI scratch dirs
    const std::filesystem::path path = dir / ("BENCH_" + bench_ + ".json");
    const bool ok = writer_.write_file(path);
    std::printf("[report] %s %s (%zu runs)\n",
                ok ? "wrote" : "FAILED to write", path.string().c_str(),
                writer_.num_runs());
    return ok;
  }

 private:
  std::string bench_;
  obs::ReportWriter writer_;
  std::chrono::steady_clock::time_point mark_;  ///< last add() instant
};

}  // namespace sg::bench
