// Ablation A12: overload-hardened serving — what the brownout /
// reshard / lifecycle layers buy when the offered load exceeds what the
// resident shards can serve. A11 measured the economics of batching
// under admission-shaped load; this ablation deliberately overdrives
// the same serving stack and compares two schedulers on identical
// traces:
//
//  * off — the plain PR-8 scheduler: admission and batching only. Under
//    overload it has exactly one relief valve (token-bucket + queue
//    rejections), so queued urgent queries stall behind doomed ones and
//    the priority-0 deadline-hit ratio collapses first.
//  * armed — brownout degradation (cache/landmark answers tagged
//    degraded, then deterministic priority-weighted shedding), elastic
//    tenant resharding across 2 shard homes, and the fault-tolerant
//    query lifecycle (explicit expiry of hopeless queries, retry
//    against a fault-free twin, hedged re-dispatch of stragglers).
//
// The sweep drives the offered-rate multiplier x {1, 2, 4, 8} over the
// serving capacity knee. The table reports where the load went
// (served / degraded / shed / timeouts), the reshard migrations, the
// brownout peak tier, and the deadline-hit ratio of priority class 0
// next to the overall ratio. The bench self-checks the contract the
// chaos soak asserts under faults: at every factor the armed
// scheduler's priority-0 deadline-hit ratio is no worse than the
// unarmed one's — degrading and shedding deprioritized traffic must
// never cost the urgent class. Everything is seeded and simulated, so
// reports are byte-deterministic.
//
// `--smoke` runs the fixed x4 pair and writes
// BENCH_abl12_serve_overload_smoke.json for report_diff regression
// guarding against bench/baselines/abl12_serve_overload_smoke_baseline
// .json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace {

using namespace sg;

/// Same social-style graph sg_serve replays against: symmetric
/// communities with pair-hashed weights, the shape the degraded tier's
/// landmark triangle bound is sound on.
const graph::Csr& serve_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 2048;
    s.edges = 12000;
    s.zipf_out = 0.6;
    s.zipf_in = 0.6;
    s.communities = 4;
    s.symmetric = true;
    s.seed = 11;
    return graph::add_symmetric_weights(graph::synthetic(s), 1, 64, 11);
  }();
  return g;
}

/// Open-loop trace shaped like sg_chaos --serve-overload: a source pool
/// wider than the per-home cache (the cold phase never ends), tight
/// deadline slack, Zipf-heavy tenant 0.
serve::WorkloadSpec overload_workload(double factor) {
  serve::WorkloadSpec spec;
  spec.num_queries = 700;
  spec.num_tenants = 4;
  spec.arrival_rate_qps = 60000.0 * factor;
  spec.tenant_skew = 1.2;
  spec.source_skew = 0.7;
  spec.source_pool = 320;
  spec.bfs_frac = 0.55;
  spec.khop_frac = 0.15;
  spec.ppr_frac = 0.0;
  spec.priorities = 3;
  spec.deadline_slack_lo_ms = 0.5;
  spec.deadline_slack_hi_ms = 8.0;
  return spec;
}

serve::ServeConfig overload_cfg(bool armed, obs::Registry* metrics) {
  serve::ServeConfig cfg;
  cfg.max_queue_depth = 256;
  cfg.default_limits = {.rate_qps = 1e6, .burst = 1024.0, .max_queued = 256};
  cfg.dist_cache_capacity = 192;
  cfg.ppr_cache_capacity = 64;
  cfg.metrics = metrics;
  if (armed) {
    cfg.brownout.enabled = true;
    // Tighter than the controller defaults (which are tuned for the
    // fault-stretched batches of the chaos soak): fault-free overload
    // builds queue pressure more gradually, so the bench arms the
    // controller the way an operator sizing for this capacity would.
    cfg.brownout.score_on = 0.55;
    cfg.brownout.score_off = 0.25;
    cfg.brownout.sustain_evals = 1;
    cfg.lifecycle.enabled = true;
    cfg.reshard.enabled = true;
    cfg.reshard.num_homes = 2;
    cfg.reshard.imbalance_on = 1.3;
    cfg.reshard.imbalance_off = 1.1;
  }
  return cfg;
}

engine::RunStats aggregate(const serve::BatchScheduler& sched, int devices) {
  engine::RunStats agg;
  agg.total_time = sched.report().makespan;
  agg.global_rounds =
      static_cast<std::uint32_t>(sched.report().engine_sweeps);
  agg.compute_time.resize(devices);
  agg.device_comm_time.resize(devices);
  agg.wait_time.resize(devices);
  agg.work_items.assign(devices, 0);
  agg.rounds.assign(devices, 0);
  agg.peak_memory.assign(devices, 0);
  for (const engine::RunStats& s : sched.engine_stats()) {
    agg.comm += s.comm;
    for (int d = 0; d < devices; ++d) {
      const auto i = static_cast<std::size_t>(d);
      if (i < s.compute_time.size()) agg.compute_time[i] += s.compute_time[i];
      if (i < s.device_comm_time.size()) {
        agg.device_comm_time[i] += s.device_comm_time[i];
      }
      if (i < s.wait_time.size()) agg.wait_time[i] += s.wait_time[i];
      if (i < s.work_items.size()) agg.work_items[i] += s.work_items[i];
      if (i < s.rounds.size()) agg.rounds[i] += s.rounds[i];
      if (i < s.peak_memory.size()) {
        agg.peak_memory[i] = std::max(agg.peak_memory[i], s.peak_memory[i]);
      }
    }
  }
  return agg;
}

std::string fmt_pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", x * 100.0);
  return buf;
}

/// Priority-0 deadline-hit ratio, or -1 when the class never served.
double p0_hit(const serve::ServeReport& rep) {
  if (rep.by_priority.empty() || rep.by_priority[0].served == 0) return -1.0;
  return static_cast<double>(rep.by_priority[0].deadline_met) /
         static_cast<double>(rep.by_priority[0].served);
}

struct Cell {
  double p0 = -1.0;
};

Cell run_cell(bench::ReportLog& report, const fw::Prepared& prep,
              const sim::Topology& topo, const sim::CostParams& params,
              const engine::EngineConfig& engine_cfg, double factor,
              bool armed, int devices, bench::Table& table) {
  const std::vector<serve::Query> trace = serve::generate_workload(
      overload_workload(factor), serve_graph().num_vertices());
  obs::Registry metrics;
  serve::BatchScheduler sched(prep.dist, prep.sync, topo, params, engine_cfg,
                              overload_cfg(armed, &metrics));
  (void)sched.run(trace);
  const serve::ServeReport& rep = sched.report();

  char cfg_name[48];
  std::snprintf(cfg_name, sizeof cfg_name, "x%.0f+%s", factor,
                armed ? "armed" : "off");
  report.add("serve-overload", "social2048", "sg-serve", cfg_name, devices,
             aggregate(sched, devices), &metrics);

  const std::uint64_t shed = rep.rejected_by_reason[static_cast<std::size_t>(
      serve::RejectReason::kBrownoutShed)];
  char f[16];
  std::snprintf(f, sizeof f, "x%.0f", factor);
  const double p0 = p0_hit(rep);
  table.add_row({f, armed ? "armed" : "off", std::to_string(rep.served),
                 std::to_string(rep.degraded_served), std::to_string(shed),
                 std::to_string(rep.lifecycle.timeouts),
                 std::to_string(rep.reshard_migrations),
                 std::to_string(rep.brownout_peak_tier),
                 p0 >= 0.0 ? fmt_pct(p0) : "-",
                 fmt_pct(rep.deadline_hit_ratio)});
  return {p0};
}

int run_sweep(bench::ReportLog& report, const std::vector<double>& factors,
              int devices) {
  const graph::Csr& g = serve_graph();
  const fw::Prepared prep = fw::prepare(g, partition::Policy::CVC, devices);
  const sim::Topology topo = bench::bridges(devices);
  const sim::CostParams params = sim::CostParams::for_scaled_datasets();
  const engine::EngineConfig engine_cfg =
      engine::make_variant(engine::Variant::kVar3);

  std::printf(
      "== offered-rate multiplier x {off, armed} (700 queries, %d GPUs, "
      "CVC) ==\n",
      devices);
  bench::Table table({"Factor", "Layers", "Served", "Degraded", "Shed",
                      "Timeouts", "Migr", "PeakTier", "P0Hit", "AllHit"});
  int rc = 0;
  for (const double factor : factors) {
    const Cell off = run_cell(report, prep, topo, params, engine_cfg, factor,
                              false, devices, table);
    const Cell armed = run_cell(report, prep, topo, params, engine_cfg,
                                factor, true, devices, table);
    // The soak's margin contract, fault-free: arming the overload
    // layers must never cost the urgent class its deadline-hit ratio.
    if (off.p0 >= 0.0 && armed.p0 >= 0.0 && armed.p0 + 1e-9 < off.p0) {
      std::printf(
          "  FAIL x%.0f: armed p0 deadline-hit %.3f < unarmed %.3f\n",
          factor, armed.p0, off.p0);
      rc = 1;
    }
  }
  table.print();
  std::printf("\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Ablation A12: overload-hardened serving. Drives the offered rate\n"
      "past the serving capacity knee and compares the plain scheduler\n"
      "against one with brownout + resharding + lifecycle armed; the\n"
      "priority-0 deadline-hit margin is self-checked every factor.\n\n");

  if (smoke) {
    // Fixed x4 pair for CI: writes BENCH_abl12_serve_overload_smoke.json
    // (into $SG_BENCH_REPORT_DIR when set), diffed against
    // bench/baselines/abl12_serve_overload_smoke_baseline.json by
    // report_diff.
    bench::ReportLog report("abl12_serve_overload_smoke");
    const int rc = run_sweep(report, {4.0}, 4);
    if (rc != 0) return rc;
    if (!report.write()) return 1;
    std::printf("smoke: %zu run(s)\n", report.num_runs());
    return 0;
  }

  bench::ReportLog report("abl12_serve_overload");
  const int rc = run_sweep(report, {1.0, 2.0, 4.0, 8.0}, 4);
  if (rc != 0) return rc;
  report.write();
  return 0;
}
