// Ablation A2: throttling bulk-asynchronous execution. The paper's
// conclusion proposes "control mechanisms ... to dynamically throttle
// bulk-asynchronous execution to obtain the right trade-off between
// decoupled execution and redundant computation/communication". Our
// engine exposes that control (EngineConfig::async_lead_cap: how many
// local rounds a device may run ahead of its slowest partner); this
// bench sweeps it on the paper's problem case (bfs on the uk14
// analogue, where unthrottled BASP does extra redundant rounds) and on
// a case BASP wins (bfs on clueweb12).
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("abl2_basp_throttle");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A2: BASP asynchrony throttle sweep (Var4 + lead cap),\n"
      "bfs at 64 GPUs, IEC. cap=BSP means pure bulk-synchronous (Var3);\n"
      "cap=inf is unthrottled BASP (Var4). Redundant work = WorkItems\n"
      "relative to the BSP row.\n\n");

  const int gpus = 64;
  for (const std::string input : {"uk14", "clueweb12"}) {
    std::printf("== bfs on %s ==\n", input.c_str());
    const auto& prep =
        bench::prepared(input, false, partition::Policy::IEC, gpus);
    bench::Table table({"cap", "Total", "WorkItems", "MinRounds",
                        "MaxRounds", "Volume"});

    const auto bsp =
        fw::DIrGL::run(fw::Benchmark::kBfs, prep, bench::bridges(gpus),
                       bench::params(),
                       fw::DIrGL::config(engine::Variant::kVar3));
    if (bsp.ok) {
      report.add("bfs", input, "D-IrGL", "Var3", gpus, bsp.stats);
      table.add_row(
          {"BSP", bench::fmt_time(bsp.stats.total_time.seconds()),
           graph::human_count(bsp.stats.total_work()),
           std::to_string(bsp.stats.min_rounds()),
           std::to_string(bsp.stats.max_rounds()),
           bench::fmt_volume(
               static_cast<double>(bsp.stats.comm.total_volume()) /
               (1 << 30))});
    }
    for (std::uint32_t cap : {1u, 2u, 4u, 8u, 16u, 64u, 0u}) {
      auto cfg = fw::DIrGL::config(engine::Variant::kVar4);
      cfg.async_lead_cap = cap;
      const auto r = fw::DIrGL::run(fw::Benchmark::kBfs, prep,
                                    bench::bridges(gpus), bench::params(),
                                    cfg);
      if (!r.ok) continue;
      report.add("bfs", input, "D-IrGL",
                 "Var4+cap" + (cap == 0 ? std::string("inf")
                                        : std::to_string(cap)),
                 gpus, r.stats);
      table.add_row(
          {cap == 0 ? "inf" : std::to_string(cap),
           bench::fmt_time(r.stats.total_time.seconds()),
           graph::human_count(r.stats.total_work()),
           std::to_string(r.stats.min_rounds()),
           std::to_string(r.stats.max_rounds()),
           bench::fmt_volume(
               static_cast<double>(r.stats.comm.total_volume()) /
               (1 << 30))});
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
