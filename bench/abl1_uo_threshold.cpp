// Ablation A1: the UO-vs-AS message-size threshold. The paper (Section
// V-B3) observes that update-only sync wins when messages are large but
// loses below a threshold where the prefix-scan extraction overhead and
// per-message latency dominate, and recommends finding that threshold
// by microbenchmarking. This bench does exactly that with the cost
// model, then cross-checks with an end-to-end sssp run on the uk07
// analogue (the paper's latency-bound example) vs friendster (the
// bandwidth-bound example).
#include <cstdio>

#include "bench_common.hpp"
#include "comm/field_sync.hpp"
#include "sim/gpu_cost_model.hpp"
#include "sim/interconnect.hpp"

namespace {

using namespace sg;

bench::ReportLog report("abl1_uo_threshold");

/// Modeled one-message sync time: extraction + D2H + network + H2D.
double sync_time(std::uint32_t list_size, std::uint32_t updated,
                 comm::SyncMode mode, const sim::GpuCostModel& cost,
                 const sim::Interconnect& net) {
  const std::uint32_t sent =
      mode == comm::SyncMode::kAS ? list_size : updated;
  const std::uint64_t bytes = comm::wire_bytes(list_size, sent, 4, mode);
  sim::SimTime t;
  if (mode == comm::SyncMode::kUO) {
    t += cost.extract_updates_time(list_size, sent * 4ull);
  } else {
    t += cost.buffer_copy_time(static_cast<std::uint64_t>(sent) * 4);
  }
  t += net.device_to_host(bytes);
  t += net.host_to_host(0, 2, bytes);  // cross-host
  t += net.host_to_device(bytes);
  return t.seconds();
}

}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A1: UO vs AS sync time (simulated us) for one message as\n"
      "the updated fraction varies, per shared-proxy list size. UO wins\n"
      "above the volume threshold; AS wins when updates are so sparse\n"
      "that extraction overhead + latency dominate (paper Section\n"
      "V-B3).\n\n");

  const auto params = bench::params();
  const auto topo = bench::bridges(4);
  const sim::GpuCostModel cost(topo.spec(0), params);
  const sim::Interconnect net(topo, params);

  bench::Table table({"list_size", "updated%", "UO(us)", "AS(us)",
                      "winner"});
  for (std::uint32_t list_size : {1000u, 10000u, 100000u, 1000000u}) {
    for (double frac : {0.001, 0.01, 0.05, 0.2, 0.5, 1.0}) {
      const auto updated = static_cast<std::uint32_t>(frac * list_size);
      const double uo =
          sync_time(list_size, updated, comm::SyncMode::kUO, cost, net);
      const double as =
          sync_time(list_size, updated, comm::SyncMode::kAS, cost, net);
      char pct[16];
      std::snprintf(pct, sizeof pct, "%.1f", frac * 100);
      char uo_s[24], as_s[24];
      std::snprintf(uo_s, sizeof uo_s, "%.2f", uo * 1e6);
      std::snprintf(as_s, sizeof as_s, "%.2f", as * 1e6);
      table.add_row({std::to_string(list_size), pct, uo_s, as_s,
                     uo < as ? "UO" : "AS"});
    }
  }
  table.print();

  std::printf(
      "\nEnd-to-end cross-check (Var2=AS vs Var3=UO, Sync, IEC):\n");
  bench::Table e2e({"input", "benchmark", "gpus", "AS total", "UO total",
                    "AS volume", "UO volume"});
  struct Case {
    const char* input;
    fw::Benchmark bench;
    int gpus;
  };
  for (const Case c : {Case{"uk07", fw::Benchmark::kSssp, 64},
                       Case{"friendster", fw::Benchmark::kSssp, 64}}) {
    const auto& prep = bench::prepared(c.input, true,
                                       partition::Policy::IEC, c.gpus);
    const auto as =
        fw::DIrGL::run(c.bench, prep, bench::bridges(c.gpus),
                       bench::params(),
                       fw::DIrGL::config(engine::Variant::kVar2));
    const auto uo =
        fw::DIrGL::run(c.bench, prep, bench::bridges(c.gpus),
                       bench::params(),
                       fw::DIrGL::config(engine::Variant::kVar3));
    if (as.ok) {
      report.add(fw::to_string(c.bench), c.input, "D-IrGL", "Var2", c.gpus,
                 as.stats);
    }
    if (uo.ok) {
      report.add(fw::to_string(c.bench), c.input, "D-IrGL", "Var3", c.gpus,
                 uo.stats);
    }
    e2e.add_row(
        {c.input, fw::to_string(c.bench), std::to_string(c.gpus),
         as.ok ? bench::fmt_time(as.stats.total_time.seconds()) : "-",
         uo.ok ? bench::fmt_time(uo.stats.total_time.seconds()) : "-",
         as.ok ? bench::fmt_volume(static_cast<double>(
                     as.stats.comm.total_volume()) / (1 << 30))
               : "-",
         uo.ok ? bench::fmt_volume(static_cast<double>(
                     uo.stats.comm.total_volume()) / (1 << 30))
               : "-"});
  }
  e2e.print();
  report.write();
  return 0;
}
