// Figure 5: breakdown of execution time of Lux and the D-IrGL baseline
// (Var1: TWC + AS + Sync) for medium graphs on 4 simulated P100 GPUs —
// the head-to-head that isolates framework overheads with D-IrGL's
// optimizations disabled.
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("fig5_breakdown_lux4");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Figure 5: breakdown of execution time (simulated sec) of Lux and\n"
      "D-IrGL (Var1) for medium graphs on 4 P100 GPUs of Bridges (IEC).\n"
      "Lux supports cc and pagerank only.\n\n");

  const int gpus = 4;
  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "system", "MaxCompute", "MinWait",
                        "DeviceComm", "Total", "Volume"});
    for (auto b : {fw::Benchmark::kCc, fw::Benchmark::kPagerank}) {
      const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                         partition::Policy::IEC, gpus);
      const auto dirgl =
          fw::DIrGL::run(b, prep, bench::bridges(gpus), bench::params(),
                         fw::DIrGL::config(engine::Variant::kVar1));
      fw::RunParams rp;
      if (b == fw::Benchmark::kPagerank && dirgl.ok) {
        rp.lux_pr_rounds = dirgl.stats.global_rounds;
      }
      const auto lux =
          fw::Lux::run(b, prep, bench::bridges(gpus), bench::params(), rp);
      auto add = [&](const std::string& system, const fw::BenchmarkRun& r,
                     bool first) {
        if (!r.ok) {
          table.add_row({first ? fw::to_string(b) : "", system, "-", "-",
                         "-", "-", "-"});
          return;
        }
        const auto bd = bench::breakdown_of(r.stats);
        table.add_row({first ? fw::to_string(b) : "", system,
                       bench::fmt_time(bd.max_compute),
                       bench::fmt_time(bd.min_wait),
                       bench::fmt_time(bd.device_comm),
                       bench::fmt_time(bd.total),
                       bench::fmt_volume(bd.volume_gb)});
      };
      if (lux.ok) {
        report.add(fw::to_string(b), input, "Lux", "default", gpus,
                   lux.stats);
      }
      if (dirgl.ok) {
        report.add(fw::to_string(b), input, "D-IrGL", "Var1", gpus,
                   dirgl.stats);
      }
      add("Lux", lux, true);
      add("D-IrGL(Var1)", dirgl, false);
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
