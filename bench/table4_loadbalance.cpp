// Table IV: static load balance (max/mean edges), dynamic load balance
// (max/mean compute time), and GPU memory balance (max/mean) of D-IrGL
// for uk07 on 32 GPUs and uk14 on 64 GPUs, across benchmarks and
// partitioning policies.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace sg;

bench::ReportLog report("table4_loadbalance");

std::string fmt_ratio(double r) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f", r);
  return buf;
}

struct Cell {
  std::string static_bal = "-";
  std::string dynamic_bal = "-";
  std::string memory_bal = "-";
};

Cell measure(const std::string& input, partition::Policy policy,
             int devices, fw::Benchmark b) {
  const auto& prep = bench::prepared(input, bench::needs_weights(b), policy,
                                     devices);
  Cell cell;
  cell.static_bal = fmt_ratio(prep.dist.stats().static_balance);
  const auto r = fw::DIrGL::run(b, prep, bench::bridges(devices),
                                bench::params(),
                                fw::DIrGL::default_config(), bench::run_params(input));
  if (r.ok) {
    report.add(fw::to_string(b), input, "D-IrGL",
               std::string("Var4+") + partition::to_string(policy), devices,
               r.stats);
    cell.dynamic_bal = fmt_ratio(r.stats.dynamic_balance());
    cell.memory_bal = fmt_ratio(r.stats.memory_balance());
  }
  return cell;
}

}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Table IV: static load balance (max/mean edges), dynamic load\n"
      "balance (max/mean compute time), and GPU memory (max/mean) of\n"
      "D-IrGL (Var4).\n\n");

  struct Config {
    std::string input;
    int devices;
  };
  const std::vector<Config> configs = {{"uk07", 32}, {"uk14", 64}};
  const std::vector<partition::Policy> policies = {
      partition::Policy::CVC, partition::Policy::HVC, partition::Policy::IEC,
      partition::Policy::OEC};

  bench::Table table({"benchmark", "policy", "uk07@32 static",
                      "uk07@32 dynamic", "uk07@32 memory", "uk14@64 static",
                      "uk14@64 dynamic", "uk14@64 memory"});
  for (auto b : bench::all_benchmarks()) {
    bool first = true;
    for (auto policy : policies) {
      // The paper omits HVC for pagerank; we measure everything.
      const auto c1 = measure(configs[0].input, policy, configs[0].devices,
                              b);
      const auto c2 = measure(configs[1].input, policy, configs[1].devices,
                              b);
      table.add_row({first ? fw::to_string(b) : "",
                     partition::to_string(policy), c1.static_bal,
                     c1.dynamic_bal, c1.memory_bal, c2.static_bal,
                     c2.dynamic_bal, c2.memory_bal});
      first = false;
    }
  }
  table.print();
  std::printf(
      "\nReadings (paper Section V-C): static balance correlates with\n"
      "memory balance but not with dynamic balance; edge-cuts (IEC/OEC)\n"
      "are statically balanced by construction.\n");
  report.write();
  return 0;
}
