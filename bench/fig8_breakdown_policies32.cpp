// Figure 8: breakdown of execution time of D-IrGL (Var4) with different
// partitioning policies for medium graphs on 32 simulated P100 GPUs —
// CVC may send *more* data yet spend less time communicating because it
// has fewer communication partners (grid row/column only).
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("fig8_breakdown_policies32");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Figure 8: breakdown of execution time (simulated sec) of D-IrGL\n"
      "(Var4) with different partitioning policies for medium graphs on\n"
      "32 P100 GPUs of Bridges. Msgs counts point-to-point messages\n"
      "(CVC's partner restriction shows here).\n\n");

  const int gpus = 32;
  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "policy", "MaxCompute", "MinWait",
                        "DeviceComm", "Total", "Volume", "Msgs"});
    for (auto b : bench::all_benchmarks()) {
      bool first = true;
      for (auto policy :
           {partition::Policy::HVC, partition::Policy::OEC,
            partition::Policy::IEC, partition::Policy::CVC}) {
        const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                           policy, gpus);
        const auto r = fw::DIrGL::run(b, prep, bench::bridges(gpus),
                                      bench::params(),
                                      fw::DIrGL::default_config(), bench::run_params(input));
        if (!r.ok) {
          table.add_row({first ? fw::to_string(b) : "",
                         partition::to_string(policy), "-", "-", "-", "-",
                         "-", "-"});
          first = false;
          continue;
        }
        report.add(fw::to_string(b), input, "D-IrGL",
                   std::string("Var4+") + partition::to_string(policy),
                   gpus, r.stats);
        const auto bd = bench::breakdown_of(r.stats);
        table.add_row({first ? fw::to_string(b) : "",
                       partition::to_string(policy),
                       bench::fmt_time(bd.max_compute),
                       bench::fmt_time(bd.min_wait),
                       bench::fmt_time(bd.device_comm),
                       bench::fmt_time(bd.total),
                       bench::fmt_volume(bd.volume_gb),
                       std::to_string(r.stats.comm.messages)});
        first = false;
      }
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
