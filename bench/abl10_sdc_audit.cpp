// Ablation A10: silent-data-corruption auditing — what detection
// latency costs and what each detector class catches. The paper's
// experiments assume bit-faithful silicon; PR7's integrity auditor
// (DESIGN.md §13) drops that assumption. This ablation quantifies the
// two tuning axes on bfs and pagerank (rmat23 analogue, CVC — the 2D
// cut replicates both algorithms' frontiers, so the digest surface is
// non-trivial for push and pull alike):
//
//  1. Audit-interval sweep (kRepair): the same SDC plan — scattered
//     mirror label flips, a defective-ALU kernel window, and for
//     pagerank a corrupted checkpoint blob — audited every 1/2/4/8
//     boundaries. Smaller intervals hash more often but bound the
//     detection lag tighter; the sweep exposes the latency/overhead
//     trade the interval buys. At interval 1 every audited run ends
//     bit-exact to the fault-free oracle (Exact column) — repairs are
//     mirror-copies from canonical masters, rollbacks, or cold
//     restarts, never approximations. Wider intervals let a flip
//     survive past the reduce that folds it into master state; bfs's
//     min-reduce shrugs that off (wrong-high values lose the min),
//     but pagerank's pull-reduce *sums* the corrupt addend, and the
//     contamination then propagates in ledger-consistent form that
//     repair can no longer rewind to exact bits. That cliff is the
//     sweep's finding, and why sg_chaos --sdc pins pagerank at
//     interval 1.
//  2. Detector-set sweep (kDetect, interval 2): the same plan with
//     only one detector class armed at a time. Replica digests catch
//     the mirror flips, ABFT invariants catch the computed-wrong
//     kernel SDC that wire checksums happily seal, checkpoint
//     read-back catches the corrupt blob; the rows show each class's
//     catch by violation type, and the `all` row shows the fused
//     detector. Detect-only runs may finish wrong (Exact=no) — that
//     is the point: detection without repair only localizes.
//
// Clean-run overhead is deliberately NOT swept: all audit work is
// gated on FaultInjector::has_sdc(), so a run without SDC events
// executes none of it and its report stays byte-identical
// (CI-asserted via table2 and tests/test_integrity.cpp).
//
// All runs with the same plan are bit-deterministic. `--smoke` runs a
// reduced fixed sweep at 16 GPUs and writes a run-report for
// report_diff regression guarding against bench/baselines/.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/sync_structure.hpp"
#include "fault/fault.hpp"
#include "integrity/audit.hpp"

namespace {

using namespace sg;

/// All (mirror device, global vertex) pairs of the replication
/// surface, enumerated the way sg_chaos --sdc does: from the
/// partition's own exchange lists, so flips land on state the digest
/// audit provably covers and the master copy stays canonical.
struct FlipTarget {
  int device = -1;
  std::int64_t vertex = -1;
};

std::vector<FlipTarget> mirror_targets(const fw::Prepared& prep,
                                       int devices) {
  std::vector<FlipTarget> out;
  for (int m = 0; m < devices; ++m) {
    const auto& lg = prep.dist.part(m);
    for (int o = 0; o < devices; ++o) {
      if (o == m) continue;
      const auto& list = prep.sync.list(m, o, comm::ProxyFilter::kAll);
      for (const auto ml : list.mirror_local) {
        out.push_back({m, static_cast<std::int64_t>(lg.l2g[ml])});
      }
    }
  }
  return out;
}

/// The fixed SDC plan every sweep point replays: 6 label flips spread
/// over distinct targets and devices, a defective-ALU window on one
/// device, and (pagerank only) one corrupted checkpoint blob.
fault::FaultPlan sdc_plan(const std::vector<FlipTarget>& targets,
                          int devices, sim::SimTime oracle,
                          fw::Benchmark bench) {
  fault::FaultPlan plan;
  plan.seed = 1;
  for (int i = 0; i < 6; ++i) {
    const auto& tg = targets[(1 + i * (targets.size() / 7)) %
                             targets.size()];
    plan.flip_label(tg.device, tg.vertex, 2 + 4 * i,
                    oracle * (0.2 + 0.09 * i));
  }
  plan.sdc_kernel(devices / 3, oracle * 0.25, oracle * 0.2, 0.3);
  if (bench == fw::Benchmark::kPagerank) {
    plan.corrupt_checkpoint(devices / 2, oracle * 0.4);
  }
  return plan;
}

const char* bench_name(fw::Benchmark b) {
  return b == fw::Benchmark::kPagerank ? "pagerank" : "bfs";
}

bool exact(fw::Benchmark b, const fw::BenchmarkRun& r,
           const fw::BenchmarkRun& oracle) {
  if (b == fw::Benchmark::kPagerank) return r.ranks == oracle.ranks;
  return r.dist32 == oracle.dist32;
}

std::uint64_t max_lag(const fault::FaultStats& f) {
  std::uint64_t lag = 0;
  for (const auto& s : f.sdc) {
    if (s.max_detect_lag_rounds > lag) lag = s.max_detect_lag_rounds;
  }
  return lag;
}

std::string fmt_pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", x * 100.0);
  return buf;
}

struct Sweeps {
  std::vector<int> intervals;
  bool detector_rows = true;
};

int run_sweeps(bench::ReportLog& report, const std::string& input, int gpus,
               const Sweeps& sw) {
  const auto& prep =
      bench::prepared(input, false, partition::Policy::CVC, gpus);
  const auto topo = bench::bridges(gpus);
  const auto params = bench::params();
  const auto targets = mirror_targets(prep, gpus);
  if (targets.empty()) {
    std::printf("no replicated mirrors to flip; aborting\n");
    return 1;
  }

  for (const auto bench_kind :
       {fw::Benchmark::kBfs, fw::Benchmark::kPagerank}) {
    auto base_cfg = fw::DIrGL::config(engine::Variant::kVar3);
    if (bench_kind == fw::Benchmark::kPagerank) {
      // Checkpoint cadence on in baseline and audited runs alike, so
      // the corrupt-blob event has a blob to hit and the overhead
      // comparison is apples-to-apples.
      base_cfg.checkpoint.interval_rounds = 1;
    }
    const auto oracle =
        fw::DIrGL::run(bench_kind, prep, topo, params, base_cfg);
    if (!oracle.ok) {
      std::printf("fault-free %s run failed; aborting\n",
                  bench_name(bench_kind));
      return 1;
    }
    report.add(bench_name(bench_kind), input, "D-IrGL", "Var3", gpus,
               oracle.stats);
    const double t0 = oracle.stats.total_time.seconds();
    const auto plan = sdc_plan(targets, gpus, oracle.stats.total_time,
                               bench_kind);

    std::printf("== %s: audit-interval sweep (repair mode) ==\n",
                bench_name(bench_kind));
    {
      bench::Table table({"Interval", "Total", "Overhead", "Audits",
                          "Injected", "Detected", "Repaired", "MaxLag",
                          "Exact"});
      for (const int interval : sw.intervals) {
        auto cfg = base_cfg;
        cfg.fault_plan = &plan;
        cfg.audit.mode = integrity::AuditMode::kRepair;
        cfg.audit.interval_rounds = interval;
        cfg.audit.escalate_after = 1000;
        const auto r = fw::DIrGL::run(bench_kind, prep, topo, params, cfg);
        if (!r.ok) continue;
        report.add(bench_name(bench_kind), input, "D-IrGL",
                   "Var3+audit-i" + std::to_string(interval), gpus,
                   r.stats);
        const auto& f = r.stats.faults;
        table.add_row({std::to_string(interval),
                       bench::fmt_time(r.stats.total_time.seconds()),
                       fmt_pct(r.stats.total_time.seconds() / t0 - 1.0),
                       std::to_string(f.sdc_audits),
                       std::to_string(f.sdc_injected),
                       std::to_string(f.sdc_detected),
                       std::to_string(f.sdc_repaired),
                       std::to_string(max_lag(f)),
                       exact(bench_kind, r, oracle) ? "yes" : "NO"});
      }
      table.print();
      std::printf("\n");
    }

    if (!sw.detector_rows) continue;
    std::printf("== %s: detector-set sweep (detect mode, interval 2) ==\n",
                bench_name(bench_kind));
    {
      struct Row {
        const char* name;
        bool digests, invariants, checkpoints;
      };
      const Row rows[] = {{"digests", true, false, false},
                          {"invariants", false, true, false},
                          {"checkpoints", false, false, true},
                          {"all", true, true, true}};
      bench::Table table({"Detectors", "DigestViol", "InvViol", "CkptViol",
                          "Detected", "Exact"});
      for (const Row& row : rows) {
        auto cfg = base_cfg;
        cfg.fault_plan = &plan;
        cfg.audit.mode = integrity::AuditMode::kDetect;
        cfg.audit.interval_rounds = 2;
        cfg.audit.check_digests = row.digests;
        cfg.audit.check_invariants = row.invariants;
        cfg.audit.check_checkpoints = row.checkpoints;
        const auto r = fw::DIrGL::run(bench_kind, prep, topo, params, cfg);
        if (!r.ok) continue;
        report.add(bench_name(bench_kind), input, "D-IrGL",
                   std::string("Var3+detect-") + row.name, gpus, r.stats);
        const auto& f = r.stats.faults;
        std::uint64_t dg = 0;
        std::uint64_t iv = 0;
        std::uint64_t ck = 0;
        for (const auto& s : f.sdc) {
          dg += s.digest_violations;
          iv += s.invariant_violations;
          ck += s.checkpoint_violations;
        }
        table.add_row({row.name, std::to_string(dg), std::to_string(iv),
                       std::to_string(ck), std::to_string(f.sdc_detected),
                       exact(bench_kind, r, oracle) ? "yes" : "NO"});
      }
      table.print();
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Ablation A10: SDC auditing, bfs + pagerank on rmat23, CVC.\n"
      "Fixed SDC plan (mirror flips + kernel window + checkpoint blob)\n"
      "vs audit interval and armed detector set; MaxLag is the worst\n"
      "detection lag in audited rounds, Exact compares the final answer\n"
      "bit-for-bit against the fault-free oracle.\n\n");

  if (smoke) {
    // Reduced fixed sweep for CI: two intervals, no detector rows, at
    // 16 GPUs. Writes BENCH_abl10_sdc_smoke.json (into
    // $SG_BENCH_REPORT_DIR when set), diffed against
    // bench/baselines/abl10_sdc_smoke_baseline.json by report_diff.
    bench::ReportLog report("abl10_sdc_smoke");
    const int rc = run_sweeps(report, "rmat23", 16, {{1, 4}, false});
    if (rc != 0) return rc;
    if (!report.write()) return 1;
    std::printf("smoke: %zu run(s)\n", report.num_runs());
    return 0;
  }

  bench::ReportLog report("abl10_sdc_audit");
  const int rc = run_sweeps(report, "rmat23", 16, {{1, 2, 4, 8}, true});
  if (rc != 0) return rc;
  report.write();
  return 0;
}
