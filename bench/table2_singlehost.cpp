// Table II: fastest execution time of all frameworks using the
// best-performing number of GPUs on the single-host multi-GPU system
// (Tuxedo: 4 simulated K80 + 2 GTX 1080). For each framework the sweep
// covers 1/2/4/6 GPUs; D-IrGL additionally sweeps its partitioning
// policies and reports the best.
#include <cstdio>
#include <optional>

#include "bench_common.hpp"

namespace {

using namespace sg;

struct Best {
  double time = 0;
  int gpus = 0;
  std::string policy;
};

std::string fmt_best(const std::optional<Best>& b) {
  if (!b) return "-";
  std::string s = bench::fmt_time(b->time) + " (" +
                  std::to_string(b->gpus) + ")";
  if (!b->policy.empty()) s += " " + b->policy;
  return s;
}

const std::vector<int> kGpuCounts = {1, 2, 4, 6};

template <typename RunFn>
std::optional<Best> sweep(RunFn&& run) {
  std::optional<Best> best;
  for (int gpus : kGpuCounts) {
    const auto result = run(gpus);
    if (!result) continue;
    if (!best || result->time < best->time) best = result;
  }
  return best;
}

std::optional<Best> run_gunrock(fw::Benchmark b, const std::string& input) {
  return sweep([&](int gpus) -> std::optional<Best> {
    const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                       partition::Policy::RANDOM, gpus);
    const auto r = fw::Gunrock::run(b, prep, bench::tuxedo(gpus),
                                    bench::params());
    if (!r.ok) return std::nullopt;
    return Best{r.stats.total_time.seconds(), gpus, ""};
  });
}

std::optional<Best> run_groute(fw::Benchmark b, const std::string& input) {
  return sweep([&](int gpus) -> std::optional<Best> {
    const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                       partition::Policy::GREEDY, gpus);
    const auto r = fw::Groute::run(b, prep, bench::tuxedo(gpus),
                                   bench::params());
    if (!r.ok) return std::nullopt;
    return Best{r.stats.total_time.seconds(), gpus, ""};
  });
}

std::optional<Best> run_lux(fw::Benchmark b, const std::string& input,
                            std::uint32_t pr_rounds) {
  return sweep([&](int gpus) -> std::optional<Best> {
    const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                       partition::Policy::IEC, gpus);
    fw::RunParams rp;
    rp.lux_pr_rounds = pr_rounds;
    const auto r =
        fw::Lux::run(b, prep, bench::tuxedo(gpus), bench::params(), rp);
    if (!r.ok) return std::nullopt;
    return Best{r.stats.total_time.seconds(), gpus, ""};
  });
}

/// D-IrGL sweeps GPUs and policies; also returns the pagerank round
/// count (Lux runs pagerank for the same number of rounds).
std::optional<Best> run_dirgl(fw::Benchmark b, const std::string& input,
                              std::uint32_t* pr_rounds_out) {
  std::optional<Best> best;
  for (auto policy : {partition::Policy::OEC, partition::Policy::IEC,
                      partition::Policy::HVC, partition::Policy::CVC}) {
    for (int gpus : kGpuCounts) {
      const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                         policy, gpus);
      const auto r = fw::DIrGL::run(b, prep, bench::tuxedo(gpus),
                                    bench::params(),
                                    fw::DIrGL::default_config());
      if (!r.ok) continue;
      if (pr_rounds_out != nullptr) {
        *pr_rounds_out = std::max(*pr_rounds_out, r.stats.global_rounds);
      }
      if (!best || r.stats.total_time.seconds() < best->time) {
        best = Best{r.stats.total_time.seconds(), gpus,
                    partition::to_string(policy)};
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Table II: fastest execution time (simulated sec) of all frameworks\n"
      "using the best-performing number of GPUs on the single-host\n"
      "multi-GPU system, Tuxedo (GPU count in parentheses; D-IrGL rows\n"
      "also show the best partitioning policy).\n\n");

  const std::vector<std::string> inputs = {"rmat23", "orkut", "indochina04"};
  const std::vector<fw::Benchmark> benchmarks = {
      fw::Benchmark::kBfs, fw::Benchmark::kCc, fw::Benchmark::kPagerank,
      fw::Benchmark::kSssp};

  bench::Table table(
      {"benchmark", "platform", "rmat23", "orkut", "indochina04"});
  std::map<std::string, std::uint32_t> pr_rounds;
  for (auto b : benchmarks) {
    std::vector<std::string> dirgl_row;
    for (const auto& input : inputs) {
      std::uint32_t rounds = 0;
      const auto best = run_dirgl(b, input, &rounds);
      if (b == fw::Benchmark::kPagerank) pr_rounds[input] = rounds;
      dirgl_row.push_back(fmt_best(best));
    }
    std::vector<std::string> rows[3];
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      rows[0].push_back(fmt_best(run_gunrock(b, inputs[i])));
      rows[1].push_back(fmt_best(run_groute(b, inputs[i])));
      rows[2].push_back(fmt_best(
          run_lux(b, inputs[i],
                  pr_rounds.count(inputs[i]) ? pr_rounds[inputs[i]] : 50)));
    }
    table.add_row({fw::to_string(b), "Gunrock", rows[0][0], rows[0][1],
                   rows[0][2]});
    table.add_row({"", "Groute", rows[1][0], rows[1][1], rows[1][2]});
    table.add_row({"", "Lux", rows[2][0], rows[2][1], rows[2][2]});
    table.add_row({"", "D-IrGL", dirgl_row[0], dirgl_row[1], dirgl_row[2]});
  }
  table.print();
  return 0;
}
