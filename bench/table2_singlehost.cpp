// Table II: fastest execution time of all frameworks using the
// best-performing number of GPUs on the single-host multi-GPU system
// (Tuxedo: 4 simulated K80 + 2 GTX 1080). For each framework the sweep
// covers 1/2/4/6 GPUs; D-IrGL additionally sweeps its partitioning
// policies and reports the best.
//
// CI smoke mode: `--smoke [--report out.json] [--trace out.json]
// [--explain]` runs a reduced fixed-configuration sweep (rmat23, 4 GPUs,
// bfs + pagerank on all four frameworks) with the span tracer attached
// to the D-IrGL bfs run, and writes a run-report for report_diff
// regression guarding. --explain appends the sg_explain critical-path
// attribution of the traced run to stdout. --audit arms the SDC
// integrity auditor (kRepair, interval 1) on the D-IrGL runs; with no
// fault plan attached all audit work is gated off, so CI asserts the
// --audit report is byte-identical to the plain one. --serve likewise
// arms the serving layer: it builds a BatchScheduler over the smoke
// graph with its SLO metrics wired into the same registry the D-IrGL
// runs snapshot, then serves zero queries — serve metrics register
// lazily at event time only, so CI asserts the --serve report is
// byte-identical too (the serving layer compiled in but unused costs
// nothing in the reports). --host-time arms the host wall-clock
// profiler and flight recorder on the D-IrGL runs and writes them to a
// separate --host-report artifact; the simulated-time smoke report
// stays byte-identical with it on (CI-asserted).
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "integrity/audit.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace sg;

struct Best {
  double time = 0;
  int gpus = 0;
  std::string policy;
};

std::string fmt_best(const std::optional<Best>& b) {
  if (!b) return "-";
  std::string s = bench::fmt_time(b->time) + " (" +
                  std::to_string(b->gpus) + ")";
  if (!b->policy.empty()) s += " " + b->policy;
  return s;
}

const std::vector<int> kGpuCounts = {1, 2, 4, 6};

bench::ReportLog report("table2_singlehost");

template <typename RunFn>
std::optional<Best> sweep(RunFn&& run) {
  std::optional<Best> best;
  for (int gpus : kGpuCounts) {
    const auto result = run(gpus);
    if (!result) continue;
    if (!best || result->time < best->time) best = result;
  }
  return best;
}

std::optional<Best> run_gunrock(fw::Benchmark b, const std::string& input) {
  return sweep([&](int gpus) -> std::optional<Best> {
    const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                       partition::Policy::RANDOM, gpus);
    const auto r = fw::Gunrock::run(b, prep, bench::tuxedo(gpus),
                                    bench::params());
    if (!r.ok) return std::nullopt;
    report.add(fw::to_string(b), input, "Gunrock", "default", gpus, r.stats);
    return Best{r.stats.total_time.seconds(), gpus, ""};
  });
}

std::optional<Best> run_groute(fw::Benchmark b, const std::string& input) {
  return sweep([&](int gpus) -> std::optional<Best> {
    const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                       partition::Policy::GREEDY, gpus);
    const auto r = fw::Groute::run(b, prep, bench::tuxedo(gpus),
                                   bench::params());
    if (!r.ok) return std::nullopt;
    report.add(fw::to_string(b), input, "Groute", "default", gpus, r.stats);
    return Best{r.stats.total_time.seconds(), gpus, ""};
  });
}

std::optional<Best> run_lux(fw::Benchmark b, const std::string& input,
                            std::uint32_t pr_rounds) {
  return sweep([&](int gpus) -> std::optional<Best> {
    const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                       partition::Policy::IEC, gpus);
    fw::RunParams rp;
    rp.lux_pr_rounds = pr_rounds;
    const auto r =
        fw::Lux::run(b, prep, bench::tuxedo(gpus), bench::params(), rp);
    if (!r.ok) return std::nullopt;
    report.add(fw::to_string(b), input, "Lux", "default", gpus, r.stats);
    return Best{r.stats.total_time.seconds(), gpus, ""};
  });
}

/// D-IrGL sweeps GPUs and policies; also returns the pagerank round
/// count (Lux runs pagerank for the same number of rounds).
std::optional<Best> run_dirgl(fw::Benchmark b, const std::string& input,
                              std::uint32_t* pr_rounds_out) {
  std::optional<Best> best;
  for (auto policy : {partition::Policy::OEC, partition::Policy::IEC,
                      partition::Policy::HVC, partition::Policy::CVC}) {
    for (int gpus : kGpuCounts) {
      const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                         policy, gpus);
      const auto r = fw::DIrGL::run(b, prep, bench::tuxedo(gpus),
                                    bench::params(),
                                    fw::DIrGL::default_config());
      if (!r.ok) continue;
      report.add(fw::to_string(b), input, "D-IrGL",
                 partition::to_string(policy), gpus, r.stats);
      if (pr_rounds_out != nullptr) {
        *pr_rounds_out = std::max(*pr_rounds_out, r.stats.global_rounds);
      }
      if (!best || r.stats.total_time.seconds() < best->time) {
        best = Best{r.stats.total_time.seconds(), gpus,
                    partition::to_string(policy)};
      }
    }
  }
  return best;
}

/// CI smoke sweep: one input, one GPU count, two benchmarks, all four
/// frameworks. Deterministic (fixed seeds throughout), so the emitted
/// report can be diffed against a committed baseline.
int smoke_run(std::string report_path, const std::string& trace_path,
              bool explain, bool audit, bool serve, bool host_time,
              std::string host_report_path) {
  if (report_path.empty()) report_path = "BENCH_table2_smoke.json";
  if (host_report_path.empty()) host_report_path = "table2_smoke_host.json";
  const std::string input = "rmat23";
  const int gpus = 4;
  obs::Tracer tracer;
  obs::Registry registry;
  obs::ReportWriter writer("table2_smoke");
  std::optional<engine::RunStats> traced_stats;
  int failures = 0;
  // Host-time mode: arm a profiler and flight recorder on the D-IrGL
  // runs. Both write to a SEPARATE artifact — the simulated-time smoke
  // report must stay byte-identical with this on (CI cmp's the two).
  // The process-wide profiler is used (not a local one) so scopes
  // recorded outside the engine — fw.prepare.partition — land in the
  // same tree.
  obs::Profiler& profiler = obs::Profiler::global();
  obs::FlightRecorder flight;
  profiler.set_enabled(host_time);

  if (serve) {
    // Idle serving layer sharing the benchmark's metrics registry: it
    // admits, batches, and serves nothing, so it must register nothing
    // (serve counters appear lazily at event time). Any byte the
    // report gains from this block is a gating regression; CI cmp's
    // the --serve report against the plain one.
    const auto& prep =
        bench::prepared(input, false, partition::Policy::IEC, gpus);
    const sim::Topology topo = bench::tuxedo(gpus);
    const sim::CostParams params = bench::params();
    serve::ServeConfig scfg;
    scfg.metrics = &registry;
    serve::BatchScheduler sched(prep.dist, prep.sync, topo, params,
                                fw::DIrGL::default_config(), scfg);
    const auto answers = sched.run({});
    if (!answers.empty() || registry.size() != 0) {
      std::fprintf(stderr,
                   "--serve: idle scheduler leaked %zu answers / %zu "
                   "metrics\n",
                   answers.size(), registry.size());
      return 1;
    }
  }

  auto meta = [&](fw::Benchmark b, const std::string& system,
                  const std::string& cfg) {
    obs::ReportMeta m;
    m.bench = "table2_smoke";
    m.benchmark = fw::to_string(b);
    m.input = input;
    m.system = system;
    m.config = cfg;
    m.devices = gpus;
    m.label = m.benchmark + "/" + input + "/" + system + "/" + cfg + "/" +
              std::to_string(gpus);
    return m;
  };

  for (auto b : {fw::Benchmark::kBfs, fw::Benchmark::kPagerank}) {
    if (fw::Gunrock::supports(b)) {
      const auto& prep =
          bench::prepared(input, false, partition::Policy::RANDOM, gpus);
      const auto r =
          fw::Gunrock::run(b, prep, bench::tuxedo(gpus), bench::params());
      if (r.ok) {
        writer.add(meta(b, "Gunrock", "default"), r.stats);
      } else {
        ++failures;
      }
    }
    if (fw::Groute::supports(b)) {
      const auto& prep =
          bench::prepared(input, false, partition::Policy::GREEDY, gpus);
      const auto r =
          fw::Groute::run(b, prep, bench::tuxedo(gpus), bench::params());
      if (r.ok) {
        writer.add(meta(b, "Groute", "default"), r.stats);
      } else {
        ++failures;
      }
    }
    if (fw::Lux::supports(b)) {
      const auto& prep =
          bench::prepared(input, false, partition::Policy::IEC, gpus);
      const auto r = fw::Lux::run(b, prep, bench::tuxedo(gpus),
                                  bench::params(), fw::RunParams{});
      if (r.ok) {
        writer.add(meta(b, "Lux", "default"), r.stats);
      } else {
        ++failures;
      }
    }
    {
      const auto& prep =
          bench::prepared(input, false, partition::Policy::IEC, gpus);
      engine::EngineConfig cfg = fw::DIrGL::default_config();
      cfg.collect_trace = true;
      cfg.metrics = &registry;
      if (host_time) {
        cfg.profiler = &profiler;
        cfg.flight = &flight;
      }
      if (audit) {
        cfg.audit.mode = integrity::AuditMode::kRepair;
        cfg.audit.interval_rounds = 1;
      }
      // Trace only the bfs run so the artifact holds one clean timeline.
      const bool traced = b == fw::Benchmark::kBfs;
      if (traced) cfg.tracer = &tracer;
      const auto r = fw::DIrGL::run(b, prep, bench::tuxedo(gpus),
                                    bench::params(), cfg,
                                    bench::run_params(input));
      if (r.ok) {
        writer.add(meta(b, "D-IrGL", "Var4"), r.stats, &registry,
                   traced ? &tracer : nullptr);
        if (traced) traced_stats = r.stats;
      } else {
        ++failures;
      }
    }
  }

  std::printf("smoke: %zu run(s), %d failure(s)\n", writer.num_runs(),
              failures);
  if (!writer.write_file(report_path)) {
    std::fprintf(stderr, "[report] FAILED to write %s\n",
                 report_path.c_str());
    return 1;
  }
  std::printf("[report] wrote %s\n", report_path.c_str());
  if (!trace_path.empty()) {
    if (!tracer.write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "[trace] FAILED to write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("[trace] wrote %s (%llu spans)\n", trace_path.c_str(),
                static_cast<unsigned long long>(tracer.recorded()));
  }
  if (explain && traced_stats) {
    const auto& prep =
        bench::prepared(input, false, partition::Policy::IEC, gpus);
    std::printf("\n");
    bench::explain_run(prep, bench::tuxedo(gpus), bench::params(),
                       *traced_stats, tracer,
                       "bfs/" + input + "/D-IrGL/Var4/" +
                           std::to_string(gpus));
  }
  if (host_time) {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "sg.host_time.report");
    w.kv("nondeterministic", true);
    w.key("host_time");
    profiler.write_json(w);
    w.key("flight");
    flight.write_json(w, /*include_wall=*/false);
    w.end_object();
    std::ofstream out(host_report_path, std::ios::binary);
    out << w.take() << '\n';
    if (!out) {
      std::fprintf(stderr, "[host-time] FAILED to write %s\n",
                   host_report_path.c_str());
      return 1;
    }
    std::printf("[host-time] wrote %s (%llu flight events)\n",
                host_report_path.c_str(),
                static_cast<unsigned long long>(flight.recorded()));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sg;
  bool smoke = false;
  bool explain = false;
  bool audit = false;
  bool serve = false;
  bool host_time = false;
  std::string report_path;
  std::string trace_path;
  std::string host_report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--explain") {
      explain = true;
    } else if (a == "--audit") {
      audit = true;
    } else if (a == "--serve") {
      serve = true;
    } else if (a == "--host-time") {
      host_time = true;
    } else if (a == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--host-report" && i + 1 < argc) {
      host_report_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--explain] [--audit] [--serve] "
                   "[--host-time] [--report out.json] [--trace out.json] "
                   "[--host-report out.json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (explain && !smoke) {
    std::fprintf(stderr, "--explain requires --smoke (the traced run)\n");
    return 2;
  }
  if (audit && !smoke) {
    std::fprintf(stderr, "--audit requires --smoke\n");
    return 2;
  }
  if (serve && !smoke) {
    std::fprintf(stderr, "--serve requires --smoke\n");
    return 2;
  }
  if (host_time && !smoke) {
    std::fprintf(stderr, "--host-time requires --smoke\n");
    return 2;
  }
  if (smoke) {
    return smoke_run(report_path, trace_path, explain, audit, serve,
                     host_time, host_report_path);
  }

  std::printf(
      "Table II: fastest execution time (simulated sec) of all frameworks\n"
      "using the best-performing number of GPUs on the single-host\n"
      "multi-GPU system, Tuxedo (GPU count in parentheses; D-IrGL rows\n"
      "also show the best partitioning policy).\n\n");

  const std::vector<std::string> inputs = {"rmat23", "orkut", "indochina04"};
  const std::vector<fw::Benchmark> benchmarks = {
      fw::Benchmark::kBfs, fw::Benchmark::kCc, fw::Benchmark::kPagerank,
      fw::Benchmark::kSssp};

  bench::Table table(
      {"benchmark", "platform", "rmat23", "orkut", "indochina04"});
  std::map<std::string, std::uint32_t> pr_rounds;
  for (auto b : benchmarks) {
    std::vector<std::string> dirgl_row;
    for (const auto& input : inputs) {
      std::uint32_t rounds = 0;
      const auto best = run_dirgl(b, input, &rounds);
      if (b == fw::Benchmark::kPagerank) pr_rounds[input] = rounds;
      dirgl_row.push_back(fmt_best(best));
    }
    std::vector<std::string> rows[3];
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      rows[0].push_back(fmt_best(run_gunrock(b, inputs[i])));
      rows[1].push_back(fmt_best(run_groute(b, inputs[i])));
      rows[2].push_back(fmt_best(
          run_lux(b, inputs[i],
                  pr_rounds.count(inputs[i]) ? pr_rounds[inputs[i]] : 50)));
    }
    table.add_row({fw::to_string(b), "Gunrock", rows[0][0], rows[0][1],
                   rows[0][2]});
    table.add_row({"", "Groute", rows[1][0], rows[1][1], rows[1][2]});
    table.add_row({"", "Lux", rows[2][0], rows[2][1], rows[2][2]});
    table.add_row({"", "D-IrGL", dirgl_row[0], dirgl_row[1], dirgl_row[2]});
  }
  table.print();
  report.write();
  return 0;
}
