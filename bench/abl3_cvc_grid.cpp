// Ablation A3: CVC grid-shape sweep. The Cartesian cut's communication
// partners are (rows-1) broadcasts + (cols-1)... per device; the grid
// shape trades partner count against block balance. The paper uses the
// near-square default; this ablation shows why, sweeping every
// factorization of 64 devices.
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("abl3_cvc_grid");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A3: CVC grid-shape sweep at 64 GPUs (Var4), twitter50\n"
      "analogue. rows x cols = 64; 64x1 degenerates to an outgoing\n"
      "edge-cut, 1x64 to an incoming edge-cut; near-square minimizes\n"
      "partner count (row+col-2).\n\n");

  const int gpus = 64;
  const auto& g = bench::dataset("twitter50");
  bench::Table table({"grid", "partners", "repl.factor", "static",
                      "bfs total", "bfs volume", "pr total", "pr volume"});
  for (const auto [rows, cols] :
       {std::pair{64, 1}, {32, 2}, {16, 4}, {8, 8}, {4, 16}, {2, 32},
        {1, 64}}) {
    partition::PartitionOptions opts;
    opts.policy = partition::Policy::CVC;
    opts.num_devices = gpus;
    opts.grid_rows = rows;
    opts.grid_cols = cols;
    const fw::Prepared prep{partition::partition_graph(g, opts),
                            graph::datasets::default_source(g)};
    const auto bfs = fw::DIrGL::run(fw::Benchmark::kBfs, prep,
                                    bench::bridges(gpus), bench::params(),
                                    fw::DIrGL::default_config());
    const auto pr = fw::DIrGL::run(fw::Benchmark::kPagerank, prep,
                                   bench::bridges(gpus), bench::params(),
                                   fw::DIrGL::default_config());
    char grid[16], rf[16], sb[16];
    std::snprintf(grid, sizeof grid, "%dx%d", rows, cols);
    const std::string cfg = std::string("CVC") + grid;
    if (bfs.ok) {
      report.add("bfs", "twitter50", "D-IrGL", cfg, gpus, bfs.stats);
    }
    if (pr.ok) {
      report.add("pagerank", "twitter50", "D-IrGL", cfg, gpus, pr.stats);
    }
    std::snprintf(rf, sizeof rf, "%.2f",
                  prep.dist.stats().replication_factor);
    std::snprintf(sb, sizeof sb, "%.2f", prep.dist.stats().static_balance);
    table.add_row(
        {grid, std::to_string(rows + cols - 2), rf, sb,
         bfs.ok ? bench::fmt_time(bfs.stats.total_time.seconds()) : "-",
         bfs.ok ? bench::fmt_volume(
                      static_cast<double>(bfs.stats.comm.total_volume()) /
                      (1 << 30))
                : "-",
         pr.ok ? bench::fmt_time(pr.stats.total_time.seconds()) : "-",
         pr.ok ? bench::fmt_volume(
                     static_cast<double>(pr.stats.comm.total_volume()) /
                     (1 << 30))
               : "-"});
  }
  table.print();
  report.write();
  return 0;
}
