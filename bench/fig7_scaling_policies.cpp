// Figure 7: strong scaling of D-IrGL (Var4, all optimizations) with
// different partitioning policies for medium graphs on Bridges. The
// paper's headline: CVC scales best and overtakes the edge-cuts at 16+
// GPUs.
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("fig7_scaling_policies");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Figure 7: strong scaling (simulated sec) of D-IrGL (Var4) with\n"
      "different partitioning policies for medium graphs on Bridges.\n\n");

  const std::vector<int> gpu_counts = {2, 4, 8, 16, 32, 64};
  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "policy", "2", "4", "8", "16", "32",
                        "64"});
    for (auto b : bench::all_benchmarks()) {
      bool first = true;
      for (auto policy :
           {partition::Policy::HVC, partition::Policy::OEC,
            partition::Policy::IEC, partition::Policy::CVC}) {
        std::vector<std::string> row{first ? fw::to_string(b) : "",
                                     partition::to_string(policy)};
        for (int gpus : gpu_counts) {
          const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                             policy, gpus);
          const auto r = fw::DIrGL::run(b, prep, bench::bridges(gpus),
                                        bench::params(),
                                        fw::DIrGL::default_config(), bench::run_params(input));
          if (r.ok) {
            report.add(fw::to_string(b), input, "D-IrGL",
                       std::string("Var4+") + partition::to_string(policy),
                       gpus, r.stats);
          }
          row.push_back(r.ok ? bench::fmt_time(r.stats.total_time.seconds())
                             : "-");
        }
        table.add_row(std::move(row));
        first = false;
      }
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
