// Ablation A5: ordered vs chaotic worklists for sssp. D-IrGL's sssp is
// a chaotic push relaxation; priority-ordered (delta-stepping) worklists
// trade scheduling overhead for far fewer redundant relaxations — the
// classic knob behind the computation-optimization axis the paper
// studies. Sweeps the bucket width on the medium graphs at 32 GPUs.
#include <cstdio>

#include "algo/sssp.hpp"
#include "algo/sssp_delta.hpp"
#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("abl5_ordered_worklists");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A5: chaotic relaxation vs delta-stepping sssp (Var4,\n"
      "IEC, 32 GPUs). 'work' counts edge relaxations; redundancy is\n"
      "work relative to |E|.\n\n");

  const int gpus = 32;
  const auto topo = bench::bridges(gpus);
  const auto params = bench::params();
  engine::EngineConfig config;  // Var4 defaults

  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    const auto& prep =
        bench::prepared(input, /*weighted=*/true, partition::Policy::IEC,
                        gpus);
    const auto src = prep.default_source;
    const auto edges = bench::dataset(input, true).num_edges();
    std::printf("== %s (|E| = %s) ==\n", input.c_str(),
                graph::human_count(edges).c_str());
    bench::Table table({"scheduler", "Total", "Work", "Work/|E|",
                        "Rounds", "Volume"});
    auto add = [&](const std::string& name, const algo::SsspResult& r) {
      report.add("sssp", input, "D-IrGL", "Var4+" + name, gpus, r.stats);
      char ratio[16];
      std::snprintf(ratio, sizeof ratio, "%.2f",
                    static_cast<double>(r.stats.total_work()) /
                        static_cast<double>(edges));
      table.add_row({name, bench::fmt_time(r.stats.total_time.seconds()),
                     graph::human_count(r.stats.total_work()), ratio,
                     std::to_string(r.stats.global_rounds),
                     bench::fmt_volume(
                         static_cast<double>(r.stats.comm.total_volume()) /
                         (1 << 30))});
    };
    add("chaotic", algo::run_sssp(prep.dist, prep.sync, topo, params,
                                  config, src));
    for (std::uint64_t delta : {25ull, 100ull, 400ull, 1600ull}) {
      add("delta=" + std::to_string(delta),
          algo::run_sssp_delta(prep.dist, prep.sync, topo, params, config,
                               src, delta));
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
