// Table I: inputs and their key properties. Prints the measured
// properties of each scaled synthetic analogue next to the paper's
// values for the real dataset, so the preserved knobs (density, degree
// skew, diameter ordering) are auditable.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace sg;
  std::printf(
      "Table I: inputs and their key properties.\n"
      "Analogue columns are measured on the scaled synthetic graphs;\n"
      "paper columns are the real datasets (scale shows the edge-count\n"
      "reduction of the analogue).\n\n");

  bench::Table table({"input", "category", "|V|", "|E|", "|E|/|V|",
                      "maxDout", "maxDin", "diam", "size(MB)",
                      "paper|V|", "paper|E|", "paperDout", "paperDin",
                      "paperDiam", "scale"});
  for (const auto& info : graph::datasets::registry()) {
    const auto& g = bench::dataset(info.name);
    const auto p = graph::analyze(g);
    char density[16], scale[16];
    std::snprintf(density, sizeof density, "%.1f", p.avg_degree);
    std::snprintf(scale, sizeof scale, "%.0fx", info.edge_scale);
    table.add_row({info.name,
                   graph::datasets::to_string(info.category),
                   graph::human_count(p.num_vertices),
                   graph::human_count(p.num_edges),
                   density,
                   graph::human_count(p.max_out_degree),
                   graph::human_count(p.max_in_degree),
                   std::to_string(p.approx_diameter),
                   bench::fmt_bytes_mb(p.size_bytes),
                   graph::human_count(info.paper_vertices),
                   graph::human_count(info.paper_edges),
                   graph::human_count(info.paper_max_dout),
                   graph::human_count(info.paper_max_din),
                   std::to_string(info.paper_diameter),
                   scale});
  }
  table.print();
  return 0;
}
