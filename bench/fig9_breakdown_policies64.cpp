// Figure 9: breakdown of execution time of D-IrGL (Var4) with different
// partitioning policies for the LARGE graphs on 64 simulated P100 GPUs,
// with capacity-tight devices: statically imbalanced policies run out
// of device memory even though the graph fits in the aggregate memory —
// the paper's key memory finding.
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("fig9_breakdown_policies64");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Figure 9: breakdown of execution time (simulated sec) of D-IrGL\n"
      "(Var4) with different partitioning policies for large graphs on\n"
      "64 P100 GPUs of Bridges. Device capacities are tight (dataset-\n"
      "scaled): OOM marks the paper's missing bars.\n\n");

  const int gpus = 64;
  // Capacities are tight enough that HVC's replication blowup on the
  // high-locality web crawls cannot fit, while the balanced policies
  // run — the paper's missing Figure 9 bars.
  const auto topo = bench::bridges(gpus, 5000.0);
  for (const std::string input : {"clueweb12", "uk14", "wdc14"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "policy", "MaxCompute", "MinWait",
                        "DeviceComm", "Total", "Volume", "MaxMem(MB)"});
    for (auto b : bench::all_benchmarks()) {
      bool first = true;
      for (auto policy :
           {partition::Policy::HVC, partition::Policy::OEC,
            partition::Policy::IEC, partition::Policy::CVC}) {
        const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                           policy, gpus);
        const auto r = fw::DIrGL::run(b, prep, topo, bench::params(),
                                      fw::DIrGL::default_config(), bench::run_params(input));
        if (!r.ok) {
          table.add_row({first ? fw::to_string(b) : "",
                         partition::to_string(policy), "OOM", "-", "-", "-",
                         "-", "-"});
          first = false;
          continue;
        }
        report.add(fw::to_string(b), input, "D-IrGL",
                   std::string("Var4+") + partition::to_string(policy),
                   gpus, r.stats);
        const auto bd = bench::breakdown_of(r.stats);
        table.add_row({first ? fw::to_string(b) : "",
                       partition::to_string(policy),
                       bench::fmt_time(bd.max_compute),
                       bench::fmt_time(bd.min_wait),
                       bench::fmt_time(bd.device_comm),
                       bench::fmt_time(bd.total),
                       bench::fmt_volume(bd.volume_gb),
                       bench::fmt_bytes_mb(r.stats.max_memory())});
        first = false;
      }
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
