// Ablation A4: the paper's Section VII improvement proposals, projected.
//
//  * "frameworks should adopt modern GPU architecture capabilities such
//     as GPUDirect to avoid data transfers through the host"
//     -> CostParams::gpudirect replaces the GPU->host->host->GPU path
//        with P2P PCIe / RDMA.
//  * "performance can be improved by overlapping communication with
//     computation"
//     -> EngineConfig::overlap_comm pipelines extraction with the
//        downlink and the uplink with the apply on a copy engine.
//
// This bench quantifies each on the medium graphs at 32 GPUs under the
// default D-IrGL configuration (Var4, CVC).
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace sg;

struct Mode {
  const char* name;
  bool overlap;
  bool gpudirect;
};

bench::ReportLog report("abl4_future_optimizations");

}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A4: projected gains from the paper's proposed\n"
      "improvements (Section VII), D-IrGL Var4 + CVC at 32 GPUs.\n\n");

  const int gpus = 32;
  const Mode modes[] = {
      {"baseline", false, false},
      {"+overlap", true, false},
      {"+gpudirect", false, true},
      {"+both", true, true},
  };

  for (const std::string input : {"friendster", "twitter50", "uk07"}) {
    std::printf("== %s ==\n", input.c_str());
    bench::Table table({"benchmark", "mode", "Total", "DeviceComm",
                        "speedup"});
    for (auto b : {fw::Benchmark::kBfs, fw::Benchmark::kPagerank,
                   fw::Benchmark::kSssp}) {
      const auto& prep = bench::prepared(input, bench::needs_weights(b),
                                         partition::Policy::CVC, gpus);
      double baseline = 0;
      bool first = true;
      for (const Mode& mode : modes) {
        auto params = bench::params();
        params.gpudirect = mode.gpudirect;
        auto cfg = fw::DIrGL::default_config();
        cfg.overlap_comm = mode.overlap;
        const auto r = fw::DIrGL::run(b, prep, bench::bridges(gpus), params,
                                      cfg, bench::run_params(input));
        if (!r.ok) continue;
        report.add(fw::to_string(b), input, "D-IrGL",
                   std::string("Var4+CVC") + mode.name, gpus, r.stats);
        const double total = r.stats.total_time.seconds();
        if (mode.overlap == false && mode.gpudirect == false) {
          baseline = total;
        }
        char speedup[16];
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      baseline > 0 ? baseline / total : 1.0);
        table.add_row({first ? fw::to_string(b) : "", mode.name,
                       bench::fmt_time(total),
                       bench::fmt_time(r.stats.max_device_comm().seconds()),
                       speedup});
        first = false;
      }
    }
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
