// Ablation A6: what BASP's idle devices do decides whether asynchronous
// execution beats bulk-synchronous on high-diameter inputs.
//
// Gluon-Async devices busy-poll — an idle device keeps executing local
// rounds (worklist check + bitvector scan) until distributed
// termination is detected — which is why the paper's bfs/uk14 case
// executes 2141 minimum local rounds and loses to BSP (Section V-B4).
// Our default BASP parks idle devices for free (optimistic). This bench
// runs both idle models next to BSP (Var3) on the two Section V-B4
// inputs and shows the paper's sign flip emerging under busy-poll.
#include <cstdio>

#include "bench_common.hpp"

namespace {
sg::bench::ReportLog report("abl6_basp_idle_model");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A6: BASP idle-device model vs BSP, bfs at 64 GPUs (IEC).\n"
      "'park' = idle devices sleep free (our optimistic default);\n"
      "'busy-poll' = idle devices churn local rounds until global\n"
      "termination (Gluon-Async). MinRounds is the paper's exploding\n"
      "metric.\n\n");

  const int gpus = 64;
  for (const std::string input : {"uk14", "clueweb12"}) {
    std::printf("== bfs on %s ==\n", input.c_str());
    const auto& prep =
        bench::prepared(input, false, partition::Policy::IEC, gpus);
    bench::Table table(
        {"mode", "Total", "MinRounds", "MaxRounds", "WorkItems", "Volume"});

    auto add = [&](const std::string& name, const fw::BenchmarkRun& r) {
      if (!r.ok) return;
      report.add("bfs", input, "D-IrGL", name, gpus, r.stats);
      table.add_row(
          {name, bench::fmt_time(r.stats.total_time.seconds()),
           std::to_string(r.stats.min_rounds()),
           std::to_string(r.stats.max_rounds()),
           graph::human_count(r.stats.total_work()),
           bench::fmt_volume(
               static_cast<double>(r.stats.comm.total_volume()) /
               (1 << 30))});
    };

    add("BSP (Var3)",
        fw::DIrGL::run(fw::Benchmark::kBfs, prep, bench::bridges(gpus),
                       bench::params(),
                       fw::DIrGL::config(engine::Variant::kVar3)));
    add("BASP park",
        fw::DIrGL::run(fw::Benchmark::kBfs, prep, bench::bridges(gpus),
                       bench::params(),
                       fw::DIrGL::config(engine::Variant::kVar4)));
    auto busy = fw::DIrGL::config(engine::Variant::kVar4);
    busy.async_busy_poll = true;
    add("BASP busy-poll",
        fw::DIrGL::run(fw::Benchmark::kBfs, prep, bench::bridges(gpus),
                       bench::params(), busy));
    table.print();
    std::printf("\n");
  }
  report.write();
  return 0;
}
