// Ablation A8: fault injection and recovery cost. The paper's
// experiments assume failure-free runs; this ablation quantifies what
// resilience would cost the same engine. Three experiments, bfs on the
// rmat23 analogue at 16 GPUs (IEC):
//
//  1. Checkpoint-interval sweep under a mid-run device crash: a short
//     interval pays more checkpoint overhead but re-executes fewer
//     rounds after rollback; interval 0 falls back to degraded
//     (cold-restart + peer re-feed) recovery.
//  2. Permanent device-loss sweep: the same failure expressed three
//     ways — elastic re-homing onto the survivors (lose_device + the
//     φ-accrual detector), transient cold restart (crash + degraded
//     peer re-feed), and transient checkpoint rollback — compared on
//     recovery time and re-executed work at several loss times.
//  3. Message-drop sweep under BSP: per-message retry-with-backoff cost
//     as the drop probability rises (retransmitted volume and time).
//  4. The same drop sweep under BASP, where the Safra-style termination
//     audit must still report clean quiescence.
//  5. Wire-anomaly rate sweep under BSP: corrupt / duplicate / reorder
//     probability vs the masking cost of the versioned wire protocol
//     (checksum NACK retransmits, sequence dedupe, reorder buffering) —
//     the overhead-vs-anomaly-rate curves.
//
// All runs with the same plan are bit-deterministic, so every number
// here is reproducible.
#include <cstdio>

#include "bench_common.hpp"
#include "fault/fault.hpp"

namespace {
sg::bench::ReportLog report("abl8_fault_recovery");
}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A8: fault injection + checkpoint/restart recovery,\n"
      "bfs on rmat23 at 16 GPUs, IEC. Failure-free baseline vs injected\n"
      "faults; Total is simulated seconds, Reexec is re-executed BSP\n"
      "rounds after rollback, CkptT/RecT are checkpoint and recovery\n"
      "time charged to the run.\n\n");

  const int gpus = 16;
  const std::string input = "rmat23";
  const auto& prep =
      bench::prepared(input, false, partition::Policy::IEC, gpus);
  const auto topo = bench::bridges(gpus);
  const auto params = bench::params();

  const auto bsp = fw::DIrGL::config(engine::Variant::kVar3);
  const auto base = fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params,
                                   bsp);
  if (!base.ok) {
    std::printf("baseline run failed; aborting\n");
    return 1;
  }
  report.add("bfs", input, "D-IrGL", "Var3", gpus, base.stats);
  const double t0 = base.stats.total_time.seconds();

  std::printf("== crash at 50%% of the failure-free run: checkpoint "
              "interval sweep ==\n");
  {
    bench::Table table({"Interval", "Total", "Overhead", "Ckpts", "Reexec",
                        "CkptT", "RecT"});
    table.add_row({"no-fault", bench::fmt_time(t0), "-", "0", "0", "0",
                   "0"});
    fault::FaultPlan plan;
    plan.seed = 1;
    plan.crash_device(gpus / 2, base.stats.total_time * 0.5);
    for (const std::uint32_t interval : {0u, 1u, 2u, 4u, 8u}) {
      auto cfg = bsp;
      cfg.fault_plan = &plan;
      cfg.checkpoint.interval_rounds = interval;
      const auto r =
          fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params, cfg);
      if (!r.ok) continue;
      report.add("bfs", input, "D-IrGL",
                 "Var3+crash50+ckpt" + (interval == 0
                                            ? std::string("degraded")
                                            : std::to_string(interval)),
                 gpus, r.stats);
      const auto& f = r.stats.faults;
      char overhead[32];
      std::snprintf(overhead, sizeof overhead, "%.1f%%",
                    (r.stats.total_time.seconds() / t0 - 1.0) * 100.0);
      table.add_row({interval == 0 ? "degraded" : std::to_string(interval),
                     bench::fmt_time(r.stats.total_time.seconds()),
                     overhead, std::to_string(f.checkpoints_taken),
                     std::to_string(f.reexecuted_rounds),
                     bench::fmt_time(f.checkpoint_time.seconds()),
                     bench::fmt_time(f.recovery_time.seconds())});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "== permanent device loss vs transient crash: recovery strategy "
      "sweep ==\n"
      "rehome   = device never returns; φ-accrual eviction, masters\n"
      "           re-elected on surviving proxies, orphans rebalanced\n"
      "           (run finishes on %d GPUs)\n"
      "cold     = device restarts blank; degraded peer re-feed\n"
      "rollback = device restarts; restore checkpoint (interval 2)\n",
      gpus - 1);
  {
    bench::Table table({"Strategy", "LossAt", "Total", "Overhead", "Reexec",
                        "RecT", "DetLat", "Rehomed", "Migrated"});
    for (const double frac : {0.25, 0.5, 0.75}) {
      const auto at = base.stats.total_time * frac;
      char when[16];
      std::snprintf(when, sizeof when, "%.0f%%", frac * 100.0);
      struct Strategy {
        const char* name;
        bool permanent;
        std::uint32_t interval;
      };
      for (const Strategy s : {Strategy{"rehome", true, 0u},
                               Strategy{"cold", false, 0u},
                               Strategy{"rollback", false, 2u}}) {
        fault::FaultPlan plan;
        plan.seed = 1;
        if (s.permanent) {
          plan.lose_device(gpus / 2, at);
        } else {
          plan.crash_device(gpus / 2, at);
        }
        auto cfg = bsp;
        cfg.fault_plan = &plan;
        cfg.checkpoint.interval_rounds = s.interval;
        const auto r =
            fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params, cfg);
        if (!r.ok) continue;
        report.add("bfs", input, "D-IrGL",
                   std::string("Var3+") + s.name + "@" + when, gpus,
                   r.stats);
        const auto& f = r.stats.faults;
        char overhead[32];
        std::snprintf(overhead, sizeof overhead, "%.1f%%",
                      (r.stats.total_time.seconds() / t0 - 1.0) * 100.0);
        table.add_row({s.name, when,
                       bench::fmt_time(r.stats.total_time.seconds()),
                       overhead, std::to_string(f.reexecuted_rounds),
                       bench::fmt_time(f.recovery_time.seconds()),
                       bench::fmt_time(f.detection_latency.seconds()),
                       std::to_string(f.rehomed_masters),
                       std::to_string(f.migrated_vertices)});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf("== message-drop sweep, BSP: retry-with-backoff cost ==\n");
  {
    bench::Table table({"DropProb", "Total", "Overhead", "Dropped",
                        "Retries", "RetransMB"});
    table.add_row({"0", bench::fmt_time(t0), "-", "0", "0", "0"});
    for (const double prob : {0.05, 0.1, 0.2, 0.4}) {
      fault::FaultPlan plan;
      plan.seed = 1;
      plan.drop_messages(prob, sim::SimTime::zero());
      auto cfg = bsp;
      cfg.fault_plan = &plan;
      const auto r =
          fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params, cfg);
      if (!r.ok) continue;
      const auto& f = r.stats.faults;
      char pb[16], overhead[32];
      std::snprintf(pb, sizeof pb, "%.2f", prob);
      report.add("bfs", input, "D-IrGL", std::string("Var3+drop") + pb,
                 gpus, r.stats);
      std::snprintf(overhead, sizeof overhead, "%.1f%%",
                    (r.stats.total_time.seconds() / t0 - 1.0) * 100.0);
      table.add_row({pb, bench::fmt_time(r.stats.total_time.seconds()),
                     overhead, std::to_string(f.messages_dropped),
                     std::to_string(f.retries),
                     bench::fmt_bytes_mb(f.retransmitted_bytes)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf("== message-drop sweep, BASP: termination stays clean ==\n");
  {
    const auto basp = fw::DIrGL::config(engine::Variant::kVar4);
    const auto abase =
        fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params, basp);
    if (!abase.ok) {
      std::printf("BASP baseline failed; skipping\n");
      report.write();
      return 0;
    }
    report.add("bfs", input, "D-IrGL", "Var4", gpus, abase.stats);
    const double a0 = abase.stats.total_time.seconds();
    bench::Table table({"DropProb", "Total", "Overhead", "Dropped",
                        "Retries", "CleanTerm"});
    table.add_row({"0", bench::fmt_time(a0), "-", "0", "0", "yes"});
    for (const double prob : {0.05, 0.1, 0.2}) {
      fault::FaultPlan plan;
      plan.seed = 1;
      plan.drop_messages(prob, sim::SimTime::zero());
      auto cfg = basp;
      cfg.fault_plan = &plan;
      const auto r =
          fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params, cfg);
      if (!r.ok) continue;
      const auto& f = r.stats.faults;
      char pb[16], overhead[32];
      std::snprintf(pb, sizeof pb, "%.2f", prob);
      report.add("bfs", input, "D-IrGL", std::string("Var4+drop") + pb,
                 gpus, r.stats);
      std::snprintf(overhead, sizeof overhead, "%.1f%%",
                    (r.stats.total_time.seconds() / a0 - 1.0) * 100.0);
      table.add_row({pb, bench::fmt_time(r.stats.total_time.seconds()),
                     overhead, std::to_string(f.messages_dropped),
                     std::to_string(f.retries),
                     f.termination_clean ? "yes" : "NO"});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "== wire-anomaly rate sweep, BSP: protocol masking cost ==\n"
      "corrupt   -> checksum mismatch, NACK, retransmit\n"
      "duplicate -> discarded by per-channel sequence numbers\n"
      "reorder   -> delayed past later traffic; buffered only when a\n"
      "             same-channel sequence gap forms (under BSP a channel\n"
      "             carries one frame per round, so the barrier usually\n"
      "             absorbs the delay as straggler time instead)\n");
  {
    bench::Table table({"Kind", "Rate", "Total", "Overhead", "Injected",
                        "Masked", "Retries", "RetransMB"});
    struct Anomaly {
      const char* name;
      fault::FaultKind kind;
    };
    for (const Anomaly a :
         {Anomaly{"corrupt", fault::FaultKind::kMsgCorrupt},
          Anomaly{"duplicate", fault::FaultKind::kMsgDuplicate},
          Anomaly{"reorder", fault::FaultKind::kMsgReorder}}) {
      for (const double rate : {0.02, 0.05, 0.1, 0.2}) {
        fault::FaultPlan plan;
        plan.seed = 1;
        switch (a.kind) {
          case fault::FaultKind::kMsgCorrupt:
            plan.corrupt_messages(rate, sim::SimTime::zero());
            break;
          case fault::FaultKind::kMsgDuplicate:
            plan.duplicate_messages(rate, sim::SimTime::zero());
            break;
          default:
            plan.reorder_messages(rate, sim::SimTime::zero());
            break;
        }
        auto cfg = bsp;
        cfg.fault_plan = &plan;
        const auto r =
            fw::DIrGL::run(fw::Benchmark::kBfs, prep, topo, params, cfg);
        if (!r.ok) continue;
        const auto& f = r.stats.faults;
        char rb[16], overhead[32];
        std::snprintf(rb, sizeof rb, "%.2f", rate);
        report.add("bfs", input, "D-IrGL",
                   std::string("Var3+") + a.name + rb, gpus, r.stats);
        std::snprintf(overhead, sizeof overhead, "%.1f%%",
                      (r.stats.total_time.seconds() / t0 - 1.0) * 100.0);
        std::uint64_t injected = 0;
        std::uint64_t masked = 0;
        switch (a.kind) {
          case fault::FaultKind::kMsgCorrupt:
            injected = f.messages_corrupted;
            masked = f.messages_corrupted - f.corrupt_applied;
            break;
          case fault::FaultKind::kMsgDuplicate:
            injected = f.duplicates_injected;
            masked = f.duplicates_discarded;
            break;
          default:
            injected = f.reorders_injected;
            masked = f.reorder_buffered;
            break;
        }
        table.add_row({a.name, rb,
                       bench::fmt_time(r.stats.total_time.seconds()),
                       overhead, std::to_string(injected),
                       std::to_string(masked), std::to_string(f.retries),
                       bench::fmt_bytes_mb(f.retransmitted_bytes)});
      }
    }
    table.print();
  }
  report.write();
  return 0;
}
