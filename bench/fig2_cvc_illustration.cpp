// Figure 2: the Cartesian vertex-cut for 8 devices, reproduced as the
// block-ownership matrix of the adjacency matrix. Rows (outgoing edges)
// are blocked; the matrix is placed onto a 4x2 device grid; the device
// owning block (i, j) is the one in source-block i's grid row and
// destination-block j's grid column.
#include <cstdio>

#include "partition/cvc.hpp"

int main() {
  using namespace sg::partition;
  const int devices = 8;
  const CvcGrid grid = CvcGrid::auto_shape(devices);
  std::printf(
      "Figure 2: Cartesian vertex-cut (CVC) for %d devices — a %dx%d\n"
      "grid. Cell (i, j) shows which device owns the edges from source\n"
      "block i to destination block j (blocks are the master ranges,\n"
      "devices are numbered 1..%d as in the paper).\n\n",
      devices, grid.rows(), grid.cols(), devices);

  std::printf("          destination block\n       ");
  for (int j = 0; j < devices; ++j) std::printf(" %2d", j + 1);
  std::printf("\n");
  for (int i = 0; i < devices; ++i) {
    std::printf("src %2d |", i + 1);
    for (int j = 0; j < devices; ++j) {
      std::printf(" %2d", grid.edge_owner(i, j) + 1);
    }
    std::printf("   <- masters of block %d on device %d\n", i + 1, i + 1);
  }

  std::printf("\nStructural invariants (checked by the test suite):\n");
  for (int d = 0; d < devices; ++d) {
    std::printf(
        "  device %d (grid row %d, col %d): broadcast partners = {", d + 1,
        grid.row_of(d), grid.col_of(d));
    for (int p : grid.row_partners(d)) std::printf(" %d", p + 1);
    std::printf(" }, reduce partners = {");
    for (int p : grid.col_partners(d)) std::printf(" %d", p + 1);
    std::printf(" }\n");
  }
  std::printf(
      "\nEvery mirror with outgoing edges lies in its master's grid row;\n"
      "every mirror with incoming edges in its master's grid column — so\n"
      "broadcasts stay in-row and reductions in-column, eliminating\n"
      "all-to-all communication (paper Section III-D1).\n");
  return 0;
}
