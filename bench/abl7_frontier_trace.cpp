// Ablation A7: data-driven vs topology-driven activity over rounds
// (paper Section III-E1). Data-driven bfs touches a bursty, travelling
// frontier — a few percent of the graph per round on a high-diameter
// input — while topology-driven pagerank sweeps all vertices every
// round. The per-round trace makes the contrast (and the reason
// update-only sync pays off) directly visible.
#include <cstdio>

#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "bench_common.hpp"

namespace {

sg::bench::ReportLog report("abl7_frontier_trace");

void print_trace(const char* title, const sg::engine::RunStats& stats,
                 std::size_t max_rows) {
  using namespace sg;
  std::printf("%s: %zu rounds\n", title, stats.trace.size());
  bench::Table table({"round", "active", "edges", "volume"});
  const std::size_t n = stats.trace.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_rows);
  for (std::size_t i = 0; i < n; i += step) {
    const auto& tr = stats.trace[i];
    table.add_row({std::to_string(tr.round),
                   graph::human_count(tr.active_vertices),
                   graph::human_count(tr.edges),
                   bench::fmt_volume(static_cast<double>(tr.volume_bytes) /
                                     (1 << 30))});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sg;
  std::printf(
      "Ablation A7: per-round activity traces (Section III-E1), uk07\n"
      "analogue on 8 GPUs, CVC, BSP. bfs (data-driven) shows a\n"
      "travelling frontier; pagerank (topology-driven) sweeps everything\n"
      "every round with geometrically-decaying useful updates.\n\n");

  const int gpus = 8;
  const auto& prep =
      bench::prepared("uk07", false, partition::Policy::CVC, gpus);
  auto cfg = fw::DIrGL::config(engine::Variant::kVar3);  // BSP for traces
  cfg.collect_trace = true;

  const auto bfs = fw::DIrGL::run(fw::Benchmark::kBfs, prep,
                                  bench::bridges(gpus), bench::params(),
                                  cfg);
  if (bfs.ok) {
    report.add("bfs", "uk07", "D-IrGL", "Var3+CVC", gpus, bfs.stats);
    print_trace("bfs (data-driven push)", bfs.stats, 24);
  }

  const auto pr = fw::DIrGL::run(fw::Benchmark::kPagerank, prep,
                                 bench::bridges(gpus), bench::params(),
                                 cfg);
  if (pr.ok) {
    report.add("pagerank", "uk07", "D-IrGL", "Var3+CVC", gpus, pr.stats);
    print_trace("pagerank (topology-driven pull)", pr.stats, 24);
  }
  report.write();
  return 0;
}
